package cart

import (
	"container/list"
	"sync"
)

// The compiled-plan cache. Compiling a plan is O(t·d) symbolic work plus
// DAG construction — thousands of allocations for a dense stencil
// (BENCH_P2) — yet the result is a pure function of (grid shape,
// neighborhood, op, algorithm, block geometry, rank, epoch): nothing in
// the compiled phases, copies, or dependency DAG refers to a particular
// communicator or world. A service that creates the same topology over
// and over (the common case for high-traffic workloads, and what
// facade_test.go did on every *Init) should pay that cost once.
//
// The cache is process-global and shared across worlds: ranks are
// goroutines in one address space, and two communicators with the same
// fingerprint compile byte-identical plans, so sharing is correct, not
// merely safe. Entries hold detached "master" plans — the immutable
// compile products only (phases, copies, DAG, deferScatter), with every
// piece of per-instance scratch stripped. A hit binds a fresh Plan to the
// calling communicator (bind), sharing the masters' read-only structure;
// the executors allocate their own scratch (pends, pipe, temp) lazily, so
// concurrent executions of one cached entry from many goroutines never
// touch shared mutable state.
//
// Keying and invalidation:
//
//   - The key hashes the normalized shape (dims + periods), the ordered
//     neighborhood offsets (order is semantic: block i travels to offset
//     i), the block-geometry fingerprint, (op, algo), the rank, and the
//     communicator's recovery epoch. Isomorphic communicators — same
//     shape and offsets, regardless of which world created them — share
//     entries by construction.
//   - Entries store the full pre-hash key material and verify it on hit,
//     so a 64-bit hash collision degrades to a miss, never a wrong plan.
//   - The epoch in the key makes recovery invalidation automatic: a world
//     re-embedded after RecoverShrink (PR 6) carries a bumped epoch, so
//     every lookup from the recovered world misses and recompiles against
//     the new shape; pre-recovery entries age out via LRU.
//   - Plans compiled with WithScheduleTransform (mutation-smoke plants)
//     and the w-variants (geometry closed over caller Layouts the cache
//     cannot fingerprint) bypass the cache entirely.
//
// Execution-style options (blocking rounds, barriered phases, pre-post
// window) are NOT part of the key: they do not affect compilation, only
// which executor runs, and are applied to the bound instance after a hit.

// geomKind classifies block geometries for fingerprinting.
type geomKind uint8

const (
	// geomNone marks an unfingerprintable geometry (w-variants with
	// caller-supplied Layout values): never cached.
	geomNone geomKind = iota
	// geomUniform is the regular geometry: block i = m elements at i·m.
	geomUniform
	// geomVector is the irregular (v) geometry: per-neighbor counts and
	// displacements, captured verbatim in vec.
	geomVector
)

// geomSig is the canonical fingerprint of a block geometry. Two
// geometries with equal signatures produce identical layouts at every
// slot, so their compiled plans are interchangeable.
type geomSig struct {
	kind geomKind
	m    int
	vec  []int
}

func (g geomSig) equal(o geomSig) bool {
	if g.kind != o.kind || g.m != o.m || len(g.vec) != len(o.vec) {
		return false
	}
	for i, x := range g.vec {
		if x != o.vec[i] {
			return false
		}
	}
	return true
}

// hash folds the signature into an FNV accumulator.
func (g geomSig) hash(h uint64) uint64 {
	h = fnvInt(h, int(g.kind))
	h = fnvInt(h, g.m)
	h = fnvInt(h, len(g.vec))
	for _, x := range g.vec {
		h = fnvInt(h, x)
	}
	return h
}

// vectorSig builds a geomVector signature from count/displacement arrays;
// the arrays are copied so later caller mutation cannot corrupt the key.
func vectorSig(parts ...[]int) geomSig {
	n := 0
	for _, p := range parts {
		n += len(p) + 1
	}
	v := make([]int, 0, n)
	for _, p := range parts {
		v = append(v, len(p)) // length marker: ([1,2],[3]) ≠ ([1],[2,3])
		v = append(v, p...)
	}
	return geomSig{kind: geomVector, vec: v}
}

// FNV-1a over machine words, hand-rolled so key construction allocates
// nothing on the Init hot path.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvInt(h uint64, x int) uint64 {
	v := uint64(x)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// planCacheKey is the comparable cache key: content hashes plus the small
// exact fields. Collisions on the hashed components are disambiguated by
// the entry's stored key material, checked on every hit.
type planCacheKey struct {
	shape uint64 // FNV over dims + periods
	nbh   uint64 // FNV over the ordered offset list
	geom  uint64 // FNV over the geometry signature
	op    OpKind
	algo  Algorithm
	rank  int32
	epoch int64
}

// planCacheEntry is one cached master plan with the exact key material
// for collision verification and an estimated footprint for the bytes
// gauge.
type planCacheEntry struct {
	key     planCacheKey
	dims    []int
	periods []bool
	flatNbh []int
	geom    geomSig
	master  *Plan
	bytes   int64
}

// matches verifies the exact key material against a communicator's
// topology and a geometry signature (hash-collision defense).
func (e *planCacheEntry) matches(c *Comm, g geomSig) bool {
	if len(e.dims) != len(c.grid.Dims) || len(e.flatNbh) != len(c.flatNbh) {
		return false
	}
	for i, d := range c.grid.Dims {
		if e.dims[i] != d || e.periods[i] != c.grid.Periods[i] {
			return false
		}
	}
	for i, x := range c.flatNbh {
		if e.flatNbh[i] != x {
			return false
		}
	}
	return e.geom.equal(g)
}

// planCache is a mutex-guarded LRU over master plans. Operations are
// O(1); the lock covers only map/list manipulation — compilation happens
// outside it, and bind happens after release on the caller's copy of the
// master pointer (masters are immutable once published).
type planCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[planCacheKey]*list.Element
	lru      *list.List // front = most recently used; values *planCacheEntry
	bytes    int64
	hits     int64
	misses   int64
	evicts   int64
}

// DefaultPlanCacheCapacity bounds the shared cache (entries, not bytes):
// generous for a service cycling through a repertoire of topologies,
// small enough that a pathological sweep over thousands of distinct block
// sizes cannot hold the process's memory hostage.
const DefaultPlanCacheCapacity = 256

var sharedPlanCache = newPlanCache(DefaultPlanCacheCapacity)

func newPlanCache(capacity int) *planCache {
	return &planCache{
		capacity: capacity,
		entries:  make(map[planCacheKey]*list.Element),
		lru:      list.New(),
	}
}

// cacheKey assembles the key for (op, algo, geometry) on this
// communicator. Allocation-free: the shape and neighborhood hashes were
// computed once at NeighborhoodCreate.
func (c *Comm) cacheKey(op OpKind, algo Algorithm, g geomSig) planCacheKey {
	return planCacheKey{
		shape: c.shapeHash,
		nbh:   c.nbhHash,
		geom:  g.hash(fnvOffset),
		op:    op,
		algo:  algo,
		rank:  int32(c.comm.Rank()),
		epoch: c.comm.Epoch(),
	}
}

// get returns the master plan for the key after verifying the stored key
// material, promoting the entry to most-recently-used. A hash collision
// with mismatched material reports a miss.
func (pc *planCache) get(key planCacheKey, c *Comm, g geomSig) (*Plan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[key]
	if ok {
		e := el.Value.(*planCacheEntry)
		if e.matches(c, g) {
			pc.lru.MoveToFront(el)
			pc.hits++
			if m := c.cmet; m != nil {
				m.pcHit.Inc()
			}
			return e.master, true
		}
	}
	pc.misses++
	if m := c.cmet; m != nil {
		m.pcMiss.Inc()
	}
	return nil, false
}

// put publishes a freshly compiled master, evicting least-recently-used
// entries beyond capacity. A racing insert of the same key (two worlds
// compiling the identical topology concurrently) keeps the incumbent —
// both masters are equivalent, and callers already hold their own.
func (pc *planCache) put(key planCacheKey, c *Comm, g geomSig, master *Plan) {
	e := &planCacheEntry{
		key:     key,
		dims:    append([]int(nil), c.grid.Dims...),
		periods: append([]bool(nil), c.grid.Periods...),
		flatNbh: append([]int(nil), c.flatNbh...),
		geom:    g,
		master:  master,
		bytes:   planFootprint(master),
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.capacity <= 0 {
		return
	}
	if _, ok := pc.entries[key]; ok {
		return
	}
	pc.entries[key] = pc.lru.PushFront(e)
	pc.bytes += e.bytes
	for pc.lru.Len() > pc.capacity {
		oldest := pc.lru.Back()
		ev := oldest.Value.(*planCacheEntry)
		pc.lru.Remove(oldest)
		delete(pc.entries, ev.key)
		pc.bytes -= ev.bytes
		pc.evicts++
		if m := c.cmet; m != nil {
			m.pcEvict.Inc()
		}
	}
	if m := c.cmet; m != nil {
		m.pcBytes.Set(pc.bytes)
	}
}

// planFootprint estimates a master plan's retained size in bytes for the
// cart.plancache.bytes gauge — an accounting estimate (struct headers and
// slice payloads of the compiled products), not a precise heap survey.
func planFootprint(p *Plan) int64 {
	const (
		planBase  = 512
		roundBase = 192
		partCost  = 48
		copyCost  = 64
		depCost   = 48
	)
	b := int64(planBase)
	for _, rounds := range p.phases {
		for i := range rounds {
			r := &rounds[i]
			b += roundBase
			b += int64(len(r.send.Parts())+len(r.recv.Parts())) * partCost
			b += int64(len(r.sendWhat) + len(r.recvWhat))
		}
	}
	b += int64(len(p.copies)) * copyCost
	b += int64(len(p.deps)) * depCost
	b += int64(len(p.flat)) * 8
	b += int64(len(p.deferScatter))
	return b
}

// PlanCacheStats is a snapshot of the shared plan cache.
type PlanCacheStats struct {
	Entries   int
	Capacity  int
	Bytes     int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// SnapshotPlanCache returns the shared cache's current counters.
func SnapshotPlanCache() PlanCacheStats {
	pc := sharedPlanCache
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Entries:   pc.lru.Len(),
		Capacity:  pc.capacity,
		Bytes:     pc.bytes,
		Hits:      pc.hits,
		Misses:    pc.misses,
		Evictions: pc.evicts,
	}
}

// SetPlanCacheCapacity rebounds the shared cache, evicting down to the
// new capacity immediately. Capacity 0 disables caching (and drops every
// entry). Returns the previous capacity.
func SetPlanCacheCapacity(n int) int {
	pc := sharedPlanCache
	pc.mu.Lock()
	defer pc.mu.Unlock()
	prev := pc.capacity
	pc.capacity = n
	for pc.lru.Len() > pc.capacity {
		oldest := pc.lru.Back()
		ev := oldest.Value.(*planCacheEntry)
		pc.lru.Remove(oldest)
		delete(pc.entries, ev.key)
		pc.bytes -= ev.bytes
		pc.evicts++
	}
	return prev
}

// ResetPlanCache drops every entry and zeroes the counters (tests,
// benchmarks).
func ResetPlanCache() {
	pc := sharedPlanCache
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.entries = make(map[planCacheKey]*list.Element)
	pc.lru = list.New()
	pc.bytes, pc.hits, pc.misses, pc.evicts = 0, 0, 0, 0
}

// detach strips a freshly compiled plan down to its immutable compile
// products for publication as a cache master: no communicator, no
// metrics handles, no executor scratch, no observed counters, no Auto
// wiring. Masters are never executed — bind produces the runnable
// instances.
func (p *Plan) detach() *Plan {
	return &Plan{
		op:            p.op,
		algo:          p.algo,
		phases:        p.phases,
		copies:        p.copies,
		tempLen:       p.tempLen,
		rounds:        p.rounds,
		volume:        p.volume,
		deferScatter:  p.deferScatter,
		flat:          p.flat,
		deps:          p.deps,
		window:        p.window,
		avgBlockElems: p.avgBlockElems,
	}
}

// bind materializes a runnable plan from a cached master for communicator
// c: the immutable compile products are shared (read-only during
// execution by construction), all per-instance scratch starts empty and
// is allocated lazily by the executors. O(1), a single Plan allocation —
// the whole point of a hit.
func (m *Plan) bind(c *Comm, blocking bool) *Plan {
	return &Plan{
		comm:          c,
		op:            m.op,
		algo:          m.algo,
		blocking:      blocking,
		phases:        m.phases,
		copies:        m.copies,
		tempLen:       m.tempLen,
		rounds:        m.rounds,
		volume:        m.volume,
		deferScatter:  m.deferScatter,
		flat:          m.flat,
		deps:          m.deps,
		window:        m.window,
		avgBlockElems: m.avgBlockElems,
		cmet:          c.cmet,
		fromCache:     true,
	}
}

// FromCache reports whether this plan's compile products came from the
// shared plan cache (true after a hit; an Auto plan reports its
// combining leg).
func (p *Plan) FromCache() bool { return p.fromCache }
