package cart

import "cartcc/internal/vec"

// identityOrder returns [0, 1, ..., d-1].
func identityOrder(d int) []int {
	o := make([]int, d)
	for i := range o {
		o[i] = i
	}
	return o
}

// AlltoallSchedule computes the message-combining alltoall schedule of
// Algorithm 1 of the paper in O(td) time, purely locally.
//
// Dimension-wise path expansion: the block for neighbor N[i] travels one
// hop per non-zero coordinate of N[i], via the intermediate relative
// processes (n0,0,...,0), (n0,n1,0,...,0), .... Phase k bundles, into one
// round per distinct non-zero k-th coordinate, all blocks whose k-th
// coordinate equals that value (found by a stable bucket sort). Between
// hops a block alternates between the temporary buffer and its final
// position in the receive buffer, with the parity arranged so the last hop
// lands in the receive buffer — no block is ever copied between buffers
// explicitly. Blocks for the zero offset become a local copy phase.
//
// The resulting schedule has C = Σ_k C_k rounds and per-process volume
// V = Σ_i z_i blocks (Proposition 3.2).
func AlltoallSchedule(nbh vec.Neighborhood) *Schedule {
	d := nbh.Dims()
	t := len(nbh)
	s := &Schedule{Op: OpAlltoall, Algo: Combining, DimOrder: identityOrder(d), TempSlots: t}

	// hops[i] counts the remaining hops of block i, initialized to z_i.
	hops := make([]int, t)
	zi := make([]int, t)
	for i, rel := range nbh {
		zi[i] = rel.NonZeros()
		hops[i] = zi[i]
		if zi[i] == 0 {
			s.Copies = append(s.Copies, LocalCopy{From: BufSend, FromSlot: i, ToSlot: i})
		}
	}

	for k := 0; k < d; k++ {
		order := vec.BucketSortByCoord(nbh, k)
		var rounds []Round
		var cur *Round
		curCoord := 0
		for _, i := range order {
			ck := nbh[i][k]
			if ck == 0 {
				continue
			}
			if cur == nil || ck != curCoord {
				rel := make(vec.Vec, d)
				rel[k] = ck
				rounds = append(rounds, Round{Rel: rel})
				cur = &rounds[len(rounds)-1]
				curCoord = ck
			}
			h := hops[i] // remaining hops including this one
			mv := Move{Block: i, FromSlot: i, ToSlot: i}
			switch {
			case h == zi[i]:
				mv.From = BufSend // first hop: out of the user send buffer
			case h%2 == 0:
				mv.From = BufRecv
			default:
				mv.From = BufTemp
			}
			if h%2 == 1 {
				mv.To = BufRecv // odd remaining hops: this or a later odd hop lands here
			} else {
				mv.To = BufTemp
				s.NeedTemp = true
			}
			cur.Moves = append(cur.Moves, mv)
			hops[i]--
			s.Volume++
		}
		s.Phases = append(s.Phases, Phase{Dim: k, Rounds: rounds})
		s.Rounds += len(rounds)
	}
	return s
}
