package cart

import (
	"fmt"
	"reflect"
	"testing"

	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// TestMeshBoundaryAgainstTrivialOracle is the table-driven boundary check
// for non-periodic meshes: on every rank — corners and edges with
// truncated neighborhoods included — the mesh-aware combining plans and
// the trivial plans must leave byte-identical receive buffers. Both
// receive buffers start at the -1 sentinel, so the comparison also pins
// down *which* blocks each algorithm leaves untouched (those whose source
// lies off the grid), not just the delivered payloads.
func TestMeshBoundaryAgainstTrivialOracle(t *testing.T) {
	asym2 := vec.Neighborhood{{0, 0}, {1, 0}, {2, 0}, {0, -1}, {-1, 2}}
	cases := []struct {
		name string
		dims []int
		nbh  func(t *testing.T) vec.Neighborhood
		m    int
	}{
		{"1d line r1", []int{5}, func(t *testing.T) vec.Neighborhood { return mustStencil(t, 1, 3, -1) }, 2},
		{"1d line r2", []int{4}, func(t *testing.T) vec.Neighborhood { return mustStencil(t, 1, 5, -2) }, 1},
		{"2d moore", []int{3, 4}, func(t *testing.T) vec.Neighborhood { return mustStencil(t, 2, 3, -1) }, 2},
		{"2d wide reach", []int{4, 3}, func(t *testing.T) vec.Neighborhood { return mustStencil(t, 2, 5, -2) }, 1},
		{"2d asymmetric", []int{3, 3}, func(t *testing.T) vec.Neighborhood { return asym2 }, 3},
		{"3d moore", []int{3, 2, 3}, func(t *testing.T) vec.Neighborhood { return mustStencil(t, 3, 3, -1) }, 1},
		{"3d von neumann", []int{2, 3, 2}, func(t *testing.T) vec.Neighborhood {
			n, err := vec.VonNeumann(3, 1)
			if err != nil {
				t.Fatal(err)
			}
			return n
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nbh := tc.nbh(t)
			periods := make([]bool, len(tc.dims))
			runWorld(t, gridSize(tc.dims), func(w *mpi.Comm) error {
				c, err := NeighborhoodCreate(w, tc.dims, periods, nbh, nil)
				if err != nil {
					return err
				}
				if err := compareMeshToTrivial(c, w, nbh, tc.m, OpAllgather); err != nil {
					return err
				}
				return compareMeshToTrivial(c, w, nbh, tc.m, OpAlltoall)
			})
			// The cases are chosen so truncation actually happens: an
			// all-interior grid would make the comparison vacuous.
			g, err := vec.NewGrid(tc.dims, periods)
			if err != nil {
				t.Fatal(err)
			}
			truncated := false
			for r := 0; r < g.Size() && !truncated; r++ {
				for _, rel := range nbh {
					if _, ok := g.RankDisplace(r, rel); !ok {
						truncated = true
						break
					}
				}
			}
			if !truncated {
				t.Fatalf("case exercises no boundary: every neighbor of every rank is on the grid")
			}
		})
	}
}

// compareMeshToTrivial runs the mesh-aware combining plan and the trivial
// plan for one operation in the same world and demands identical receive
// buffers, sentinel blocks included. On ranks with truncated neighborhoods
// it additionally checks that exactly the off-grid sources stayed at the
// sentinel.
func compareMeshToTrivial(c *Comm, w *mpi.Comm, nbh vec.Neighborhood, m int, op OpKind) error {
	tn := len(nbh)
	var send []int
	if op == OpAllgather {
		send = make([]int, m)
		for e := range send {
			send[e] = encode(w.Rank(), 0, e)
		}
	} else {
		send = make([]int, tn*m)
		for i := 0; i < tn; i++ {
			for e := 0; e < m; e++ {
				send[i*m+e] = encode(w.Rank(), i, e)
			}
		}
	}
	var mesh, triv *Plan
	var err error
	if op == OpAllgather {
		if mesh, err = MeshAllgatherInit(c, m); err != nil {
			return err
		}
		if triv, err = AllgatherInit(c, m, Trivial); err != nil {
			return err
		}
	} else {
		if mesh, err = MeshAlltoallInit(c, m); err != nil {
			return err
		}
		if triv, err = AlltoallInit(c, m, Trivial); err != nil {
			return err
		}
	}
	sentinel := func() []int {
		b := make([]int, tn*m)
		for i := range b {
			b[i] = -1
		}
		return b
	}
	got, want := sentinel(), sentinel()
	if err := Run(mesh, send, got); err != nil {
		return err
	}
	if err := Run(triv, send, want); err != nil {
		return err
	}
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("rank %d %v: mesh=%v trivial=%v", w.Rank(), op, got, want)
	}
	for i, rel := range nbh {
		_, onGrid := c.Grid().RankDisplace(w.Rank(), rel.Neg())
		for e := 0; e < m; e++ {
			if onGrid && got[i*m+e] == -1 {
				return fmt.Errorf("rank %d %v: block %d from on-grid source never arrived", w.Rank(), op, i)
			}
			if !onGrid && got[i*m+e] != -1 {
				return fmt.Errorf("rank %d %v: block %d has no source but holds %d", w.Rank(), op, i, got[i*m+e])
			}
		}
	}
	return nil
}
