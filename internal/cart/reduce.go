package cart

import (
	"fmt"

	"cartcc/internal/datatype"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// Cartesian neighborhood reduction — the extension the paper's Section 2.2
// points to ("Cartesian reduction operations could also be considered as
// discussed in [16]"). Every process contributes one block of m elements;
// the result at process R is the op-combination of the contributions of
// all of its source neighbors R − N[i] (one combination per occurrence for
// duplicated offsets, so the operation is the exact adjoint of the
// Cartesian allgather: whoever would receive my block in the allgather
// contributes to my reduction here... and vice versa).
//
// The message-combining algorithm is the reversed allgather tree
// (Algorithm 2 run backwards): partial combinations flow from the leaves
// toward the root, one phase per dimension in reverse tree order, with
// intermediate processes combining incoming partials. It runs in the same
// C = Σ_k C_k rounds and tree-edge volume as the allgather
// (Proposition 3.3 transfers verbatim), against t rounds for the trivial
// algorithm — and since the allgather volume of stencil families equals
// the trivial volume, combining wins at every block size here too.

// ReducePlan is a precomputed Cartesian neighborhood reduction plan.
type ReducePlan struct {
	comm     *Comm
	algo     Algorithm
	m        int
	phases   [][]reduceRound
	inits    []accInit
	accSlots int
	rootSlot int
	rounds   int
	volume   int
}

// reduceRound is one exchange: the process sends the accumulators in
// sendSlots (gathered in order) to sendTo and combines the symmetric
// incoming partials into recvSlots.
type reduceRound struct {
	sendTo    int
	recvFrom  int
	sendSlots []int
	recvSlots []int
}

// accInit seeds an accumulator slot with the process's own contribution,
// folded `times` times (duplicated offsets contribute once per
// occurrence).
type accInit struct {
	slot  int
	times int
}

// Rounds returns the number of communication rounds C of the plan.
func (p *ReducePlan) Rounds() int { return p.rounds }

// Volume returns the per-process communication volume in blocks.
func (p *ReducePlan) Volume() int { return p.volume }

// Algorithm returns the schedule family of the plan.
func (p *ReducePlan) Algorithm() Algorithm { return p.algo }

// NeighborReduceInit precomputes a reduction plan for blocks of m
// elements. Auto picks Combining (like the allgather, its volume matches
// the trivial algorithm's on stencil families, so it wins at every block
// size); on non-periodic meshes the Combining plan uses the pruned
// reversed trees of mesh_reduce.go.
func NeighborReduceInit(c *Comm, m int, algo Algorithm) (*ReducePlan, error) {
	if m < 0 {
		return nil, fmt.Errorf("cart: negative block size %d", m)
	}
	if algo == Auto {
		algo = Combining
	}
	switch algo {
	case Trivial:
		return trivialReducePlan(c, m), nil
	case Combining:
		if !c.IsPeriodic() {
			// The mesh-aware reversed-tree reduction (mesh_reduce.go).
			return meshCombiningReducePlan(c, m), nil
		}
		return combiningReducePlan(c, m), nil
	default:
		return nil, fmt.Errorf("cart: unknown algorithm %v", algo)
	}
}

// trivialReducePlan: one round per non-zero offset (Listing 4 adapted),
// own contribution folded once per zero offset.
func trivialReducePlan(c *Comm, m int) *ReducePlan {
	p := &ReducePlan{comm: c, algo: Trivial, m: m, accSlots: 1, rootSlot: 0}
	rank := c.comm.Rank()
	zero := 0
	for _, rel := range c.nbh {
		if rel.IsZero() {
			zero++
			continue
		}
		r := reduceRound{sendTo: ProcNull, recvFrom: ProcNull, sendSlots: []int{ownBlockSlot}, recvSlots: []int{0}}
		if dst, ok := c.grid.RankDisplace(rank, rel); ok {
			r.sendTo = dst
		}
		if src, ok := c.grid.RankDisplace(rank, rel.Neg()); ok {
			r.recvFrom = src
		}
		p.phases = append(p.phases, []reduceRound{r})
		p.rounds++
		p.volume++
	}
	if zero > 0 {
		p.inits = append(p.inits, accInit{slot: 0, times: zero})
	}
	return p
}

// ownBlockSlot marks "the user's send block" in sendSlots.
const ownBlockSlot = -1

// reduceTag is the tag of all Cartesian reduction traffic, kept below
// tagBase so it never collides with the per-round tags of the collective
// plans (dag.go). The reduction executor is phase-barriered, so one tag
// with FIFO matching suffices, as it did for the collectives before the
// pipelined executor.
const reduceTag = tagBase - 1

// combiningReducePlan reverses the allgather tree: contributions start at
// the nodes where the allgather data would have come to rest, and each
// node's accumulator is sent toward the root one dimension at a time, in
// reverse level order, combined at the receiver.
func combiningReducePlan(c *Comm, m int) *ReducePlan {
	tr := BuildAllgatherTree(c.nbh, nil)
	d := c.nbh.Dims()
	p := &ReducePlan{comm: c, algo: Combining, m: m}
	rank := c.comm.Rank()

	// lastHopLevel as in the allgather schedule: member i rests in the
	// subtree formed at its last non-zero level.
	lastHop := make([]int, len(c.nbh))
	for i, rel := range c.nbh {
		lastHop[i] = -1
		for l := 0; l < d; l++ {
			if rel[tr.DimOrder[l]] != 0 {
				lastHop[i] = l
			}
		}
	}

	// Assign accumulator slots (one per tree node, root included) and
	// record contribution inits: member i's contribution enters at the
	// hopping node of its last non-zero level (the node where its
	// allgather copy would come to rest), and at the root for the zero
	// offset. Pass-through nodes never seed contributions of their own —
	// their resting members were seeded at the hopping ancestor whose
	// slot they share.
	slotOf := map[*TreeNode]int{}
	var assign func(n *TreeNode)
	assign = func(n *TreeNode) {
		slotOf[n] = p.accSlots
		p.accSlots++
		if n.Coord != 0 || n.Level == -1 {
			resting := 0
			for _, mIdx := range n.Members {
				if lastHop[mIdx] == n.Level {
					resting++
				}
			}
			if resting > 0 {
				p.inits = append(p.inits, accInit{slot: slotOf[n], times: resting})
			}
		}
		for _, ch := range n.Children {
			assign(ch)
		}
	}
	assign(tr.Root)
	p.rootSlot = slotOf[tr.Root]

	// Walk levels forward to collect hopping nodes per level, then emit
	// phases in reverse order. Pass-through (coord 0) children share their
	// parent's accumulator: remap their slots.
	frontier := []*TreeNode{tr.Root}
	levels := make([][]*TreeNode, d)
	for level := 0; level < d; level++ {
		var next []*TreeNode
		for _, parent := range frontier {
			for _, ch := range parent.Children {
				if ch.Coord == 0 {
					// Pass-through: share the parent's accumulator.
					slotOf[ch] = slotOf[parent]
				} else {
					levels[level] = append(levels[level], ch)
				}
				next = append(next, ch)
			}
		}
		frontier = next
	}

	for level := d - 1; level >= 0; level-- {
		k := tr.DimOrder[level]
		rounds := buildReduceRounds(c, rank, levels[level], slotOf, k, d)
		p.phases = append(p.phases, rounds)
		p.rounds += len(rounds)
		for _, r := range rounds {
			p.volume += len(r.sendSlots)
		}
	}
	return p
}

// buildReduceRounds groups the hopping nodes of one level by coordinate,
// exactly like the allgather schedule but with reversed data flow: the
// node's accumulator is sent along +c·e_k and the incoming partial is
// combined into the parent's accumulator.
func buildReduceRounds(c *Comm, rank int, nodes []*TreeNode, slotOf map[*TreeNode]int, k, d int) []reduceRound {
	if len(nodes) == 0 {
		return nil
	}
	sorted := append([]*TreeNode(nil), nodes...)
	sortNodesByCoord(sorted)
	parentSlot := func(n *TreeNode) int { return slotOf[n.Parent] }
	var rounds []reduceRound
	var cur *reduceRound
	curCoord := 0
	for _, n := range sorted {
		if cur == nil || n.Coord != curCoord {
			rel := make(vec.Vec, d)
			rel[k] = n.Coord
			r := reduceRound{sendTo: ProcNull, recvFrom: ProcNull}
			if dst, ok := c.grid.RankDisplace(rank, rel); ok {
				r.sendTo = dst
			}
			if src, ok := c.grid.RankDisplace(rank, rel.Neg()); ok {
				r.recvFrom = src
			}
			rounds = append(rounds, r)
			cur = &rounds[len(rounds)-1]
			curCoord = n.Coord
		}
		cur.sendSlots = append(cur.sendSlots, slotOf[n])
		cur.recvSlots = append(cur.recvSlots, parentSlot(n))
	}
	return rounds
}

// RunReduce executes the plan: send holds the process's contribution (m
// elements), recv receives the combined result (m elements). op must be
// associative and commutative.
func RunReduce[T any](p *ReducePlan, send, recv []T, op func(a, b T) T) error {
	m := p.m
	if len(send) < m || len(recv) < m {
		return fmt.Errorf("cart: RunReduce buffers need %d elements, got %d/%d", m, len(send), len(recv))
	}
	acc := make([]T, p.accSlots*m)
	has := make([]bool, p.accSlots)
	combineInto := func(slot int, data []T) {
		dst := acc[slot*m : (slot+1)*m]
		if !has[slot] {
			copy(dst, data)
			has[slot] = true
			return
		}
		for e := 0; e < m; e++ {
			dst[e] = op(dst[e], data[e])
		}
	}
	for _, init := range p.inits {
		for i := 0; i < init.times; i++ {
			combineInto(init.slot, send[:m])
		}
	}
	comm := p.comm.comm
	for _, rounds := range p.phases {
		scratch := make([][]T, len(rounds))
		reqs := make([]*mpi.Request, 0, 2*len(rounds))
		for i := range rounds {
			r := &rounds[i]
			if r.recvFrom == ProcNull {
				continue
			}
			scratch[i] = make([]T, len(r.recvSlots)*m)
			req, err := mpi.Irecv(comm, scratch[i], datatype.Contiguous(0, len(scratch[i])), r.recvFrom, reduceTag)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		for i := range rounds {
			r := &rounds[i]
			if r.sendTo == ProcNull {
				continue
			}
			wire := make([]T, len(r.sendSlots)*m)
			for j, slot := range r.sendSlots {
				var src []T
				if slot == ownBlockSlot {
					src = send[:m]
				} else {
					if !has[slot] {
						return fmt.Errorf("cart: reduce schedule sends empty accumulator %d", slot)
					}
					src = acc[slot*m : (slot+1)*m]
				}
				copy(wire[j*m:(j+1)*m], src)
			}
			req, err := mpi.Isend(comm, wire, datatype.Contiguous(0, len(wire)), r.sendTo, reduceTag)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		if err := mpi.Waitall(reqs...); err != nil {
			return err
		}
		for i := range rounds {
			r := &rounds[i]
			if r.recvFrom == ProcNull {
				continue
			}
			for j, slot := range r.recvSlots {
				combineInto(slot, scratch[i][j*m:(j+1)*m])
			}
		}
	}
	if !has[p.rootSlot] {
		// A mesh-boundary process with no sources at all: the reduction
		// has no value here; recv is left untouched (mirroring how the
		// sparse alltoall leaves blocks without a source untouched).
		return nil
	}
	copy(recv[:m], acc[p.rootSlot*m:(p.rootSlot+1)*m])
	return nil
}

// NeighborReduce performs the blocking Cartesian neighborhood reduction
// with the communicator's default algorithm.
func NeighborReduce[T any](c *Comm, send, recv []T, op func(a, b T) T) error {
	p, err := NeighborReduceInit(c, len(send), c.algo)
	if err != nil {
		return err
	}
	return RunReduce(p, send, recv, op)
}
