package cart

import (
	"fmt"

	"cartcc/internal/metrics"
	"cartcc/internal/vec"
)

// Predicted-vs-observed schedule accounting. The plan compiler knows, per
// rank, exactly what an execution should do — how many rounds this rank
// participates in, how many messages it posts, how many schedule blocks
// and elements those messages carry. The executors count what actually
// happened at their post and retire sites. Stats exposes both sides and
// Check asserts the invariant that ties the implementation to the paper's
// analysis: on an interior rank (any rank of a torus) the observed rounds
// per execution equal the schedule's C and the observed blocks equal the
// schedule's volume V.
//
// The observed counters are atomic int64 fields on the Plan: an inline
// async commit posts (and counts) on the caller's goroutine while the
// progress-engine driver retires an earlier execution of the same plan,
// so the adds must be lock-free. Uncontended atomic adds cost a few
// nanoseconds — always on, no allocation, and cheap enough that the
// instrumentation-off benchmark budget (≤2% ns/op) is not spent here.

// ExecStats is one plan's predicted-vs-observed accounting, from the
// perspective of the local rank.
type ExecStats struct {
	Op   OpKind
	Algo Algorithm

	// Predicted quantities of the symbolic schedule (interior bounds,
	// identical on every rank): C and V of the paper's analysis.
	PredictedRounds int
	PredictedVolume int

	// Planned per-execution quantities of this rank's compiled plan. On a
	// torus they coincide with the interior bounds; on a mesh boundary
	// ranks plan less (dropped ProcNull rounds).
	PlannedRounds   int // rounds with a send or a receive
	PlannedMessages int // rounds with a send
	PlannedReceives int // rounds with a receive
	PlannedBlocks   int // schedule blocks across planned sends
	PlannedElements int // elements across planned sends

	// Observed totals accumulated across executions, counted at the
	// executors' post and retire sites.
	Executions      int64
	RoundsActive    int64
	MessagesSent    int64
	ReceivesRetired int64
	BlocksForwarded int64
	ElementsSent    int64
}

// Stats returns the plan's accounting so far. For an Auto plan the
// counters accrue on the variant Run actually chose; Stats follows the
// same cut-off only after an execution has bound the element size, so
// read it from the plan you ran.
func (p *Plan) Stats() ExecStats {
	s := ExecStats{
		Op:              p.op,
		Algo:            p.algo,
		PredictedRounds: p.rounds,
		PredictedVolume: p.volume,
		Executions:      p.obsRuns.Load(),
		RoundsActive:    p.obsRounds.Load(),
		MessagesSent:    p.obsMsgs.Load(),
		ReceivesRetired: p.obsRecvs.Load(),
		BlocksForwarded: p.obsBlocks.Load(),
		ElementsSent:    p.obsElems.Load(),
	}
	for _, rounds := range p.phases {
		for i := range rounds {
			r := &rounds[i]
			if r.sendTo != ProcNull || r.recvFrom != ProcNull {
				s.PlannedRounds++
			}
			if r.sendTo != ProcNull {
				s.PlannedMessages++
				s.PlannedBlocks += r.blocks
				s.PlannedElements += r.sendElems
			}
			if r.recvFrom != ProcNull {
				s.PlannedReceives++
			}
		}
	}
	return s
}

// Check asserts the predicted-vs-observed invariant: every completed
// execution did exactly what the compiled plan said it would. It returns
// nil when no execution has run yet. After a failed (aborted) execution
// the observed counters legitimately hold a partial round trip, so Check
// is meaningful only when every execution succeeded — which is exactly
// the condition under which the paper's C and V are claims about the
// implementation.
func (s ExecStats) Check() error {
	if s.Executions == 0 {
		return nil
	}
	n := s.Executions
	checks := []struct {
		name     string
		observed int64
		perExec  int
	}{
		{"rounds", s.RoundsActive, s.PlannedRounds},
		{"messages", s.MessagesSent, s.PlannedMessages},
		{"receives", s.ReceivesRetired, s.PlannedReceives},
		{"blocks", s.BlocksForwarded, s.PlannedBlocks},
		{"elements", s.ElementsSent, s.PlannedElements},
	}
	for _, c := range checks {
		if want := n * int64(c.perExec); c.observed != want {
			return fmt.Errorf("cart: %s(%s): observed %s %d != planned %d×%d executions",
				s.Op, s.Algo, c.name, c.observed, c.perExec, n)
		}
	}
	return nil
}

// Interior reports whether this rank's plan matches the interior bounds —
// true on any torus rank, false on mesh boundary ranks that dropped
// ProcNull rounds. When true, Check additionally ties the observation to
// the paper's C and V.
func (s ExecStats) Interior() bool {
	return s.PlannedRounds == s.PredictedRounds && s.PlannedBlocks == s.PredictedVolume
}

// Predicted returns the paper's analytic round count C and per-process
// volume V (in blocks) for one collective family over a neighborhood —
// the numbers an interior rank's observed execution must reproduce. For
// the trivial algorithm both are the Table 1 trivial column.
func Predicted(nbh vec.Neighborhood, op OpKind, algo Algorithm) (c, v int) {
	st := ComputeStats(nbh)
	if algo == Trivial {
		return st.TComm, st.TComm
	}
	if op == OpAllgather {
		return st.C, st.VolAllgather
	}
	return st.C, st.VolAlltoall
}

// cartMetrics caches the executor-layer metric handles of one rank's
// registry Set; nil when metrics are off. Resolved once at compile (the
// registry is fixed for the communicator's lifetime), so the executors pay
// one nil check per increment.
type cartMetrics struct {
	runs       *metrics.Counter
	rounds     *metrics.Counter
	blocksFwd  *metrics.Counter
	prepostHWM *metrics.Gauge
	retireNs   *metrics.Histogram

	// Shared-plan-cache and autotune-selection accounting (plancache.go,
	// select.go). The cache is process-global; the counters attribute
	// each event to the rank whose Init triggered it.
	pcHit         *metrics.Counter
	pcMiss        *metrics.Counter
	pcEvict       *metrics.Counter
	pcBytes       *metrics.Gauge
	pickTrivial   *metrics.Counter
	pickCombining *metrics.Counter

	// Progress-engine accounting (engine.go, future.go).
	asyncStarts   *metrics.Counter
	asyncCancels  *metrics.Counter
	asyncInflight *metrics.Gauge
	futureNs      *metrics.Histogram
}

// newCartMetrics registers (or resolves) the cart-layer metrics on a
// rank's set. Names:
//
//	cart.runs                counter   completed plan executions
//	cart.rounds              counter   rounds this rank participated in
//	cart.blocks.fwd          counter   schedule blocks forwarded (observed volume)
//	cart.prepost.hwm         gauge     pipelined receive pre-post window high-water
//	cart.retire.ns           histogram wall-clock ns from receive post to retire
//	cart.plancache.hit       counter   shared-plan-cache hits on *Init
//	cart.plancache.miss      counter   shared-plan-cache misses (compiles)
//	cart.plancache.evict     counter   LRU evictions this rank triggered
//	cart.plancache.bytes     gauge     estimated cache footprint after this rank's inserts
//	cart.tune.pick.trivial   counter   Auto selections that chose the trivial schedule
//	cart.tune.pick.combining counter   Auto selections that chose a combining schedule
//	cart.async.started       counter   futures committed to the progress engine
//	cart.async.cancelled     counter   futures whose Cancel was requested
//	cart.async.inflight      gauge     peak committed, unretired futures (per communicator pool)
//	cart.async.future.ns     histogram wall-clock ns from commit to future completion
func newCartMetrics(set *metrics.Set) *cartMetrics {
	if set == nil {
		return nil
	}
	return &cartMetrics{
		runs:          set.Counter("cart.runs"),
		rounds:        set.Counter("cart.rounds"),
		blocksFwd:     set.Counter("cart.blocks.fwd"),
		prepostHWM:    set.Gauge("cart.prepost.hwm"),
		retireNs:      set.Histogram("cart.retire.ns"),
		pcHit:         set.Counter("cart.plancache.hit"),
		pcMiss:        set.Counter("cart.plancache.miss"),
		pcEvict:       set.Counter("cart.plancache.evict"),
		pcBytes:       set.Gauge("cart.plancache.bytes"),
		pickTrivial:   set.Counter("cart.tune.pick.trivial"),
		pickCombining: set.Counter("cart.tune.pick.combining"),
		asyncStarts:   set.Counter("cart.async.started"),
		asyncCancels:  set.Counter("cart.async.cancelled"),
		asyncInflight: set.Gauge("cart.async.inflight"),
		futureNs:      set.Histogram("cart.async.future.ns"),
	}
}

// countSend records one posted send on the plan's observed accounting
// (and the metrics registry when attached).
func (p *Plan) countSend(r *execRound) {
	p.obsMsgs.Add(1)
	p.obsBlocks.Add(int64(r.blocks))
	p.obsElems.Add(int64(r.sendElems))
	if m := p.cmet; m != nil {
		m.blocksFwd.Add(int64(r.blocks))
	}
	// A send-only round (mesh boundary: the matching receive fell off the
	// grid) is counted active at its send post; rounds with a receive are
	// counted at the receive post, exactly once either way.
	if r.recvFrom == ProcNull {
		p.countRoundActive()
	}
}

// countRecvPost records one posted receive; every planned round has at
// most one, so it doubles as the round-participation count.
func (p *Plan) countRecvPost() {
	p.countRoundActive()
}

func (p *Plan) countRoundActive() {
	p.obsRounds.Add(1)
	if m := p.cmet; m != nil {
		m.rounds.Inc()
	}
}

// countRetire records one retired (completed) receive.
func (p *Plan) countRetire() {
	p.obsRecvs.Add(1)
}

// countRun records one completed execution.
func (p *Plan) countRun() {
	p.obsRuns.Add(1)
	if m := p.cmet; m != nil {
		m.runs.Inc()
	}
}
