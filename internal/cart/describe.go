package cart

import (
	"fmt"
	"strings"
)

// Describe renders the schedule as human-readable text: one line per
// round, listing the relative step and the blocks moved with their buffer
// flow. It is the inspection view behind `cartinfo -schedule` and is
// invaluable when checking a schedule against the paper's Algorithm 1/2
// walkthroughs by hand.
func (s *Schedule) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s schedule (%s): %d rounds, volume %d blocks, dim order %v\n",
		s.Op, s.Algo, s.Rounds, s.Volume, s.DimOrder)
	for pi, ph := range s.Phases {
		if len(ph.Rounds) == 0 {
			fmt.Fprintf(&b, "phase %d (dim %d): no communication\n", pi, ph.Dim)
			continue
		}
		fmt.Fprintf(&b, "phase %d (dim %d):\n", pi, ph.Dim)
		for ri, r := range ph.Rounds {
			fmt.Fprintf(&b, "  round %d: step %v, %d blocks:", ri, r.Rel, len(r.Moves))
			for _, mv := range r.Moves {
				fmt.Fprintf(&b, " %d[%s%d→%s%d]", mv.Block, bufShort(mv.From), mv.FromSlot, bufShort(mv.To), mv.ToSlot)
			}
			fmt.Fprintln(&b)
		}
	}
	if len(s.Copies) > 0 {
		fmt.Fprintf(&b, "local copies:")
		for _, cp := range s.Copies {
			fmt.Fprintf(&b, " %s%d→recv%d", bufShort(cp.From), cp.FromSlot, cp.ToSlot)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func bufShort(b BufKind) string {
	switch b {
	case BufSend:
		return "send"
	case BufRecv:
		return "recv"
	default:
		return "tmp"
	}
}

// DescribeTree renders an allgather routing tree as indented text, the
// form of the paper's Figure 2.
func (t *AllgatherTree) DescribeTree() string {
	var b strings.Builder
	fmt.Fprintf(&b, "allgather tree: dim order %v, %d edges\n", t.DimOrder, t.Edges)
	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.Level < 0 {
			fmt.Fprintf(&b, "%sroot %v\n", indent, n.Members)
		} else {
			hop := "hop"
			if n.Coord == 0 {
				hop = "pass"
			}
			fmt.Fprintf(&b, "%s%s dim %d step %+d: members %v\n", indent, hop, t.DimOrder[n.Level], n.Coord, n.Members)
		}
		for _, ch := range n.Children {
			walk(ch, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}
