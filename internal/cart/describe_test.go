package cart

import (
	"strings"
	"testing"

	"cartcc/internal/vec"
)

func TestDescribeAlltoallSchedule(t *testing.T) {
	nbh := vec.Neighborhood{{-2, 1, 1}, {-1, 1, 1}, {1, 1, 1}, {2, 1, 1}}
	out := AlltoallSchedule(nbh).Describe()
	for _, want := range []string{
		"alltoall schedule (combining): 6 rounds, volume 12 blocks",
		"phase 0 (dim 0):",
		"step (-2,0,0)",
		"send0→recv0",
		"tmp0→recv0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeWithCopiesAndEmptyPhase(t *testing.T) {
	// Zero offset produces a local copy; a dimension with only zero
	// coordinates produces an empty phase.
	nbh := vec.Neighborhood{{0, 0}, {1, 0}}
	out := AlltoallSchedule(nbh).Describe()
	if !strings.Contains(out, "local copies: send0→recv0") {
		t.Errorf("copies missing:\n%s", out)
	}
	if !strings.Contains(out, "no communication") {
		t.Errorf("empty phase missing:\n%s", out)
	}
}

func TestDescribeAllgatherTree(t *testing.T) {
	nbh := vec.Neighborhood{{-2, 1, 1}, {-1, 1, 1}, {1, 1, 1}, {2, 1, 1}}
	tr := BuildAllgatherTree(nbh, nil)
	out := tr.DescribeTree()
	for _, want := range []string{"6 edges", "root [0 1 2 3]", "step +1", "step -2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DescribeTree missing %q:\n%s", want, out)
		}
	}
	// Pass-through nodes are labeled.
	nbh2 := vec.Neighborhood{{1, 0}, {1, 1}}
	out2 := BuildAllgatherTree(nbh2, []int{0, 1}).DescribeTree()
	if !strings.Contains(out2, "pass") {
		t.Errorf("pass-through label missing:\n%s", out2)
	}
}
