package cart

import (
	"fmt"
	"math"

	"cartcc/internal/netmodel"
	"cartcc/internal/tune"
)

// Algorithm selection: the autotuning half of the Auto plans. The paper's
// Section 3.1 derives the crossover block size below which the
// message-combining schedules beat the trivial one; Decide evaluates that
// trade with this runtime's actual executor semantics and a calibrated
// machine profile (internal/tune), so `Auto` — the default algorithm of
// NeighborhoodCreate — picks per (op, neighborhood, block size) with no
// hand tuning.
//
// The cost model matches the executors, not the paper's idealized
// nonblocking processes:
//
//   - The trivial plan runs t sequential BLOCKING rounds (Listing 4), so
//     it pays the full α + o + β·mB per round:
//     T_trivial = t·(α + o + β·mB)
//   - A combining plan runs d phases of concurrent nonblocking rounds
//     (pipelined across phases by the DAG executor): the wire latency α
//     overlaps within a phase and is paid once per dimension, while the
//     per-message CPU overhead o serializes at the posting rank:
//     T_combining = d·α + C·o + β·V·mB
//
// with o = o_send + o_recv. Equating the two gives the crossover
//
//	mB* = ((t−d)·α + (t−C)·o) / (β·(V−t))
//
// — the executor-consistent form of the paper's m < (α/β)(t−C)/(V−t).
// Combining wins below mB*; for a neighborhood where V ≤ t (combining
// adds rounds' savings at no volume penalty) it wins at every block size
// and the crossover is +Inf.

// Decision records one algorithm selection: the inputs, both predicted
// costs, the crossover point, and the pick. It is exposed through
// Plan.Decision and cmd/cartinfo so a surprising pick can be traced to
// its inputs.
type Decision struct {
	Op         OpKind
	Chosen     Algorithm // Trivial or Combining
	BlockBytes float64   // mB: mean block size in bytes at selection time
	T          int       // trivial rounds t (non-zero neighbors)
	C          int       // combining rounds
	V          int       // combining volume in blocks
	D          int       // grid dimensions (combining phases)
	// CostTrivial and CostCombining are the modeled times in seconds.
	CostTrivial   float64
	CostCombining float64
	// CrossoverBytes is the block size at which the two families tie;
	// +Inf when combining wins at every size (V ≤ t).
	CrossoverBytes float64
	// Pipelined reports whether the combining side is costed as the
	// DAG-pipelined executor (false only for barriered plans).
	Pipelined bool
	// ProfileSource is the provenance of the machine constants:
	// "model", "measured" or "default".
	ProfileSource string
}

// String formats the decision for cartinfo and debug output.
func (d Decision) String() string {
	cross := "+inf"
	if !math.IsInf(d.CrossoverBytes, 1) {
		cross = fmt.Sprintf("%.0fB", d.CrossoverBytes)
	}
	return fmt.Sprintf("%s mB=%.0f: %s (trivial %.3gs vs combining %.3gs, crossover %s, profile %s)",
		d.Op, d.BlockBytes, d.Chosen, d.CostTrivial, d.CostCombining, cross, d.ProfileSource)
}

// Decide picks the schedule family for one operation given the
// neighborhood statistics (t neighbors, C combining rounds, V combining
// volume in blocks, d dimensions), the mean block size in bytes, and a
// machine profile. Pure function — cartinfo uses it to print the
// selection table without building a world.
func Decide(op OpKind, t, c, v, d int, blockBytes float64, prof tune.Profile) Decision {
	alpha, beta, o := prof.Alpha, prof.Beta, prof.Overhead()
	dec := Decision{
		Op:            op,
		BlockBytes:    blockBytes,
		T:             t,
		C:             c,
		V:             v,
		D:             d,
		Pipelined:     true,
		ProfileSource: prof.Source,
	}
	dec.CostTrivial = float64(t) * (alpha + o + beta*blockBytes)
	dec.CostCombining = float64(d)*alpha + float64(c)*o + beta*float64(v)*blockBytes
	if v <= t {
		dec.CrossoverBytes = math.Inf(1)
	} else {
		dec.CrossoverBytes = (float64(t-d)*alpha + float64(t-c)*o) / (beta * float64(v-t))
	}
	if dec.CostTrivial < dec.CostCombining {
		dec.Chosen = Trivial
	} else {
		dec.Chosen = Combining
	}
	return dec
}

// resolveProfile picks the machine constants a selection uses, in
// precedence order: the run's virtual-time cost model (deterministic for
// tests and simulation), then an explicitly installed machine profile
// (tune.SetMachine — typically a calibration result), then the built-in
// default constants. Never triggers calibration.
func resolveProfile(model *netmodel.Model) tune.Profile {
	if model != nil {
		return tune.FromModel(model)
	}
	if p, ok := tune.Machine(); ok {
		return p
	}
	return tune.Default()
}

// choose resolves an Auto plan to its concrete variant at first execution,
// when the element size is known: Decide over the compiled schedules'
// actual (C, V) and the resolved machine profile. The outcome is memoized
// per element size on the Auto wrapper (plans are single-goroutine by
// contract), so re-executions pay one comparison.
func (p *Plan) choose(elemSize int) *Plan {
	if p.decided != nil && p.decidedElem == elemSize {
		return p.decided
	}
	prof := resolveProfile(p.comm.comm.Model())
	// The trivial round count comes from the compiled alternative (it
	// excludes zero offsets, which cost a local copy, not a message).
	dec := Decide(p.op, p.alt.rounds, p.rounds, p.volume,
		p.comm.grid.NDims(), p.avgBlockElems*float64(elemSize), prof)
	dec.Pipelined = dec.Chosen == Combining && !p.barriered
	chosen := p
	if dec.Chosen == Trivial {
		chosen = p.alt
	}
	p.decision = &dec
	p.decided = chosen
	p.decidedElem = elemSize
	if m := p.cmet; m != nil {
		if dec.Chosen == Trivial {
			m.pickTrivial.Inc()
		} else {
			m.pickCombining.Inc()
		}
	}
	return chosen
}

// Decision returns the selection record of an Auto plan's last choice.
// ok is false before the first execution (the element size is unknown
// until Run binds it) and for plans built with a concrete algorithm.
func (p *Plan) Decision() (Decision, bool) {
	if p.decision == nil {
		return Decision{}, false
	}
	return *p.decision, true
}

// Effective returns the schedule family an execution actually runs: the
// decided variant of an Auto plan (Auto itself before the first
// execution), the compiled family otherwise. (The decided plan's own algo
// field cannot be used: when combining wins, the decided plan IS the Auto
// wrapper, whose field reads Auto.)
func (p *Plan) Effective() Algorithm {
	if p.algo != Auto {
		return p.algo
	}
	if p.decision == nil {
		return Auto
	}
	return p.decision.Chosen
}
