package cart

// The cart half of the live-introspection surface: a read-only snapshot of
// a communicator's progress engine (slot tables, registration queues,
// completion-sink depths, in-flight futures) plus the process-wide
// plan-cache counters, served by internal/introspect as part of
// /debug/state. Snapshots take the same locks the engine itself uses, in
// the engine's own driveMu→mu order, and hold each for a table copy — safe
// to call from an HTTP handler goroutine while collectives are in flight,
// or while the engine is deadlocked (a parked driver holds no lock).

// WorkerDebug is one engine worker's entry in an engine snapshot.
type WorkerDebug struct {
	Worker int `json:"worker"`
	// Slots is the number of live executions in the worker's slot table;
	// SlotIDs lists them (slot order == commit order).
	Slots   int   `json:"slots"`
	SlotIDs []int `json:"slot_ids,omitempty"`
	// Orphans counts completion tokens stashed for commits still in the
	// caller's hands; PendingCommits counts registrations awaiting
	// admission by the next drive batch.
	Orphans        int `json:"orphans"`
	PendingCommits int `json:"pending_commits"`
	// SinkPending is the completion sink's queued-token count — arrivals
	// no driver has drained yet.
	SinkPending int `json:"sink_pending"`
	// Resident reports whether a resident driver goroutine is live;
	// Waiters counts Future.Wait calls currently helping.
	Resident bool `json:"resident"`
	Waiters  int  `json:"waiters"`
	// Progress is the worker's monotone progress counter (admissions,
	// deliveries, retirements); a stall probe watches it advance.
	Progress uint64 `json:"progress"`
}

// EngineDebug is a snapshot of one communicator's progress engine.
type EngineDebug struct {
	// Inflight is the number of committed, unretired futures.
	Inflight int64 `json:"inflight"`
	// NextSeq is the next future sequence number (== futures ever started).
	NextSeq int `json:"next_seq"`
	// Crashed carries the engine's injected-crash error, empty while alive.
	Crashed string        `json:"crashed,omitempty"`
	Workers []WorkerDebug `json:"workers"`
}

// EngineDebug snapshots the communicator's progress engine. Safe from any
// goroutine; a communicator that never started a future reports a zero
// snapshot (the engine is created lazily at the first Start).
func (c *Comm) EngineDebug() EngineDebug {
	e := c.eng
	if e == nil {
		return EngineDebug{}
	}
	d := EngineDebug{
		Inflight: e.inflight.Load(),
		Workers:  make([]WorkerDebug, 0, len(e.workers)),
	}
	if err := e.crashErr(); err != nil {
		d.Crashed = err.Error()
	}
	for i, w := range e.workers {
		wd := WorkerDebug{Worker: i, Waiters: int(w.waiters.Load()), SinkPending: w.sink.Pending()}
		w.driveMu.Lock()
		wd.Slots = len(w.slots)
		for _, s := range w.slots {
			wd.SlotIDs = append(wd.SlotIDs, s.id)
		}
		wd.Orphans = len(w.orphans)
		wd.Progress = w.progress
		w.driveMu.Unlock()
		w.mu.Lock()
		wd.PendingCommits = len(w.pending)
		wd.Resident = w.running
		w.mu.Unlock()
		d.Workers = append(d.Workers, wd)
	}
	d.NextSeq = int(e.nextSeq.Load())
	return d
}

// PlanCacheDebug returns the shared compiled-plan cache's counters — the
// plan-cache leg of /debug/state. (Alias for SnapshotPlanCache, named for
// the introspection surface.)
func PlanCacheDebug() PlanCacheStats { return SnapshotPlanCache() }

// IsRoundTag reports whether a wire tag belongs to a Cartesian schedule
// round (synchronous or engine plane) rather than to user or recovery
// traffic. Straggler analysis uses it to group flight-recorder receive
// events by round.
func IsRoundTag(tag int64) bool { return tag >= tagBase }

// NormalizeRoundTag folds a wire tag back to its schedule round tag.
// Engine executions shift round tags into a per-execution block above
// asyncTagBase (wire = roundTag + asyncTagBase + seq·asyncTagSpan −
// tagBase, pipeline.go); undoing the shift lets receive events from
// different concurrent executions of the same plan aggregate under one
// round identity. Synchronous and non-round tags pass through unchanged.
func NormalizeRoundTag(tag int64) int64 {
	if tag >= int64(asyncTagBase) {
		return (tag-int64(asyncTagBase))%int64(asyncTagSpan) + tagBase
	}
	return tag
}
