package cart

import (
	"sort"

	"cartcc/internal/vec"
)

// Rank reordering — the paper's reorder flag, which it observes current
// MPI libraries accept but do not exploit (§1, citing Gropp's node/socket
// work). When the run's cost model declares a two-level hierarchy (nodes
// of k consecutive physical ranks with cheap intra-node communication),
// NeighborhoodCreate with WithReorder tiles the torus into subgrid blocks
// of k processes and renumbers ranks so that each block shares a node:
// stencil neighbors are then overwhelmingly intra-node, and the virtual
// clock shows the benefit directly (BenchmarkReorderHierarchical).

// BlockedPermutation computes a node-blocked rank permutation for the
// grid: the torus is tiled by subgrids of coresPerNode processes (block
// extents dividing the grid extents), blocks are numbered row-major, and
// processes within a block get consecutive physical ranks. It returns
// newToOld with newToOld[newRank] = oldRank (old ranks assumed to be the
// physical, machine-order ranks) and ok=false when coresPerNode cannot be
// factored into divisors of the grid.
func BlockedPermutation(grid *vec.Grid, coresPerNode int) (newToOld []int, ok bool) {
	d := grid.NDims()
	if coresPerNode <= 1 || grid.Size()%coresPerNode != 0 {
		return nil, false
	}
	block, ok := blockDims(grid.Dims, coresPerNode)
	if !ok {
		return nil, false
	}
	nodesPerDim := make([]int, d)
	for i := range block {
		nodesPerDim[i] = grid.Dims[i] / block[i]
	}
	// Physical rank of logical coordinate c: node-major, then core-major.
	physOf := func(c vec.Vec) int {
		node, core := 0, 0
		for i := 0; i < d; i++ {
			node = node*nodesPerDim[i] + c[i]/block[i]
			core = core*block[i] + c[i]%block[i]
		}
		return node*coresPerNode + core
	}
	// The new (logical) rank order is the grid's row-major order; the old
	// (physical) rank it lands on is physOf.
	newToOld = make([]int, grid.Size())
	for r := 0; r < grid.Size(); r++ {
		newToOld[r] = physOf(grid.CoordOf(r))
	}
	return newToOld, true
}

// blockDims factors coresPerNode into per-dimension block extents that
// divide the grid extents, greedily assigning each prime factor (largest
// first) to the dimension with the largest remaining node extent that can
// absorb it.
func blockDims(dims []int, coresPerNode int) ([]int, bool) {
	d := len(dims)
	block := make([]int, d)
	for i := range block {
		block[i] = 1
	}
	var primes []int
	n := coresPerNode
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			primes = append(primes, f)
			n /= f
		}
	}
	if n > 1 {
		primes = append(primes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(primes)))
	for _, p := range primes {
		best := -1
		bestExtent := 0
		for i := 0; i < d; i++ {
			if dims[i]%(block[i]*p) == 0 {
				if extent := dims[i] / block[i]; extent > bestExtent {
					best, bestExtent = i, extent
				}
			}
		}
		if best < 0 {
			return nil, false
		}
		block[best] *= p
	}
	return block, true
}

// BestBlockedPermutation searches all factorizations of coresPerNode into
// per-dimension block extents (dividing the grid extents) and returns the
// permutation whose node tiling maximizes the weighted fraction of
// intra-node neighbor traffic — the use the paper suggests for weighted
// neighborhoods ("weighted neighborhoods can be taken into account if
// process remapping is to be attempted"). weights may be nil (uniform).
// ok is false when no factorization exists.
func BestBlockedPermutation(grid *vec.Grid, coresPerNode int, nbh vec.Neighborhood, weights []int) (newToOld []int, ok bool) {
	d := grid.NDims()
	if coresPerNode <= 1 || grid.Size()%coresPerNode != 0 {
		return nil, false
	}
	var best []int
	bestScore := -1.0
	var enumerate func(dim, rem int, block []int)
	enumerate = func(dim, rem int, block []int) {
		if dim == d {
			if rem != 1 {
				return
			}
			perm := permFromBlocks(grid, block, coresPerNode)
			score := weightedIntraFraction(grid, nbh, coresPerNode, perm, weights)
			if score > bestScore {
				bestScore = score
				best = perm
			}
			return
		}
		for div := 1; div <= rem && div <= grid.Dims[dim]; div++ {
			if rem%div == 0 && grid.Dims[dim]%div == 0 {
				block[dim] = div
				enumerate(dim+1, rem/div, block)
			}
		}
	}
	enumerate(0, coresPerNode, make([]int, d))
	if best == nil {
		return nil, false
	}
	return best, true
}

// permFromBlocks builds the node-blocked permutation for explicit block
// extents.
func permFromBlocks(grid *vec.Grid, block []int, coresPerNode int) []int {
	d := grid.NDims()
	nodesPerDim := make([]int, d)
	for i := range block {
		nodesPerDim[i] = grid.Dims[i] / block[i]
	}
	perm := make([]int, grid.Size())
	for r := 0; r < grid.Size(); r++ {
		c := grid.CoordOf(r)
		node, core := 0, 0
		for i := 0; i < d; i++ {
			node = node*nodesPerDim[i] + c[i]/block[i]
			core = core*block[i] + c[i]%block[i]
		}
		perm[r] = node*coresPerNode + core
	}
	return perm
}

// weightedIntraFraction is IntraNodeFraction with per-neighbor weights.
func weightedIntraFraction(grid *vec.Grid, nbh vec.Neighborhood, coresPerNode int, newToOld []int, weights []int) float64 {
	p := grid.Size()
	phys := func(r int) int {
		if newToOld == nil {
			return r
		}
		return newToOld[r]
	}
	intra, total := 0.0, 0.0
	for r := 0; r < p; r++ {
		for i, rel := range nbh {
			if rel.IsZero() {
				continue
			}
			w := 1.0
			if weights != nil {
				w = float64(weights[i])
			}
			dst, ok := grid.RankDisplace(r, rel)
			if !ok {
				continue
			}
			total += w
			if phys(r)/coresPerNode == phys(dst)/coresPerNode {
				intra += w
			}
		}
	}
	if total == 0 {
		return 1
	}
	return intra / total
}

// IntraNodeFraction reports, for diagnostics and tests, the fraction of a
// process's neighbor messages that stay inside a node under the given
// rank-to-physical mapping (identity when phys is nil). It averages over
// all processes.
func IntraNodeFraction(grid *vec.Grid, nbh vec.Neighborhood, coresPerNode int, newToOld []int) float64 {
	p := grid.Size()
	phys := func(r int) int {
		if newToOld == nil {
			return r
		}
		return newToOld[r]
	}
	intra, total := 0, 0
	for r := 0; r < p; r++ {
		for _, rel := range nbh {
			if rel.IsZero() {
				continue
			}
			dst, ok := grid.RankDisplace(r, rel)
			if !ok {
				continue
			}
			total++
			if phys(r)/coresPerNode == phys(dst)/coresPerNode {
				intra++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(intra) / float64(total)
}
