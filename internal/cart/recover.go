package cart

import (
	"errors"
	"fmt"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/trace"
	"cartcc/internal/vec"
)

// Self-healing Cartesian worlds: when ranks crash mid-collective, the
// survivors shrink the underlying communicator (mpi.RecoverShrink), agree
// on a new epoch and dead set, re-embed themselves onto a smaller torus
// under a policy, and rebuild the neighborhood communicator with all its
// schedules and plans. Recoverable wraps a collective body in that loop so
// a crash becomes "the collective completed on a smaller world" instead of
// a failed run.
//
// The protocol is built from three agreed transitions, each bracketed by a
// confirmation Agree on the shrunk communicator so no rank starts using a
// generation its peers have not finished building (a rank that bails out
// of a half-built generation revokes exactly the communicators it holds,
// which poisons the peers still blocked inside them into the next round):
//
//	RecoverShrink ─→ SubsetComm ─Agree─→ NeighborhoodCreate ─Agree─→ run
//
// Membership planning is a pure function of agreed data (the old grid and
// the agreed dead set), so every survivor computes the identical plan with
// no additional communication — the communicator for the new world is then
// built with a single collective (SubsetComm) instead of a gather-style
// Split, which could not be poisoned by a rank that failed before learning
// the new context.

// ReembedPolicy selects how survivors are arranged on the shrunk torus.
type ReembedPolicy int

const (
	// CollapseSlab removes entire hyperplanes ("slabs") along one
	// dimension: the dimension is chosen to cover every dead rank's
	// coordinate while sacrificing the fewest survivors (ties: lowest
	// dimension). Survivors keep their coordinates in every other
	// dimension, so data placement stays aligned with the old grid.
	CollapseSlab ReembedPolicy = iota
	// DenseRelabel keeps every survivor it can: it picks the largest grid
	// (by process count) of the same dimensionality that fits the survivor
	// count, preferring shapes close to the original and without degenerate
	// extent-1 dimensions, and fills it with survivors in old rank order.
	DenseRelabel
)

func (p ReembedPolicy) String() string {
	switch p {
	case CollapseSlab:
		return "collapse-slab"
	case DenseRelabel:
		return "dense-relabel"
	}
	return fmt.Sprintf("ReembedPolicy(%d)", int(p))
}

// ErrUnrecoverable marks a failure pattern the re-embedding policy cannot
// fit a grid to (e.g. slab collapse with dead ranks in every hyperplane of
// every dimension). Match with errors.Is. It is deterministic: every
// survivor computes it from agreed data, so all return it together.
var ErrUnrecoverable = errors.New("cart: survivors cannot be re-embedded")

// reembedPlan is the agreed mapping from the old Cartesian world to the
// new one. member[oldRank] is the old rank's position in the new grid, or
// -1 when the rank is dead or demoted to a spare (alive but not placed).
type reembedPlan struct {
	dims    []int
	periods []bool
	member  []int
}

// planReembed computes the re-embedding under the given policy. Pure: it
// depends only on the old grid and the agreed dead set, so every survivor
// computes the identical plan without communicating.
func planReembed(g *vec.Grid, dead map[int]bool, policy ReembedPolicy) (*reembedPlan, error) {
	switch policy {
	case CollapseSlab:
		return planCollapseSlab(g, dead)
	case DenseRelabel:
		return planDenseRelabel(g, dead)
	}
	return nil, fmt.Errorf("cart: unknown re-embedding policy %d", int(policy))
}

// planCollapseSlab removes, along one dimension k, every coordinate slab
// that contains a dead rank. Chooses the k that sacrifices the fewest
// surviving ranks (they become spares); ties break toward the lowest k.
func planCollapseSlab(g *vec.Grid, dead map[int]bool) (*reembedPlan, error) {
	d := g.NDims()
	size := g.Size()
	bestK, bestLoss := -1, 0
	for k := 0; k < d; k++ {
		deadCoords := make(map[int]bool)
		for r := range dead {
			deadCoords[g.CoordOf(r)[k]] = true
		}
		if g.Dims[k]-len(deadCoords) < 1 {
			continue // would collapse the dimension to nothing
		}
		loss := 0
		for r := 0; r < size; r++ {
			if !dead[r] && deadCoords[g.CoordOf(r)[k]] {
				loss++
			}
		}
		if bestK < 0 || loss < bestLoss {
			bestK, bestLoss = k, loss
		}
	}
	if bestK < 0 {
		return nil, fmt.Errorf("%w: dead ranks span every slab of every dimension of %v", ErrUnrecoverable, g.Dims)
	}
	deadCoords := make(map[int]bool)
	for r := range dead {
		deadCoords[g.CoordOf(r)[bestK]] = true
	}
	// offset[x] = how many removed slabs precede coordinate x.
	offset := make([]int, g.Dims[bestK])
	removed := 0
	for x := 0; x < g.Dims[bestK]; x++ {
		offset[x] = removed
		if deadCoords[x] {
			removed++
		}
	}
	dims := append([]int(nil), g.Dims...)
	dims[bestK] -= removed
	periods := append([]bool(nil), g.Periods...)
	ng, err := vec.NewGrid(dims, periods)
	if err != nil {
		return nil, err
	}
	member := make([]int, size)
	for r := 0; r < size; r++ {
		member[r] = -1
		if dead[r] {
			continue
		}
		x := g.CoordOf(r)
		if deadCoords[x[bestK]] {
			continue // survivor in a removed slab: spare
		}
		x[bestK] -= offset[x[bestK]]
		nr, err := ng.RankOf(x)
		if err != nil {
			return nil, err
		}
		member[r] = nr
	}
	return &reembedPlan{dims: dims, periods: periods, member: member}, nil
}

// planDenseRelabel picks the best same-dimensionality grid whose size does
// not exceed the survivor count — maximizing placed survivors, then
// avoiding degenerate extent-1 dimensions, then staying close to the old
// shape, then lexicographically smallest — and fills it with survivors in
// old rank order; the overflow become spares.
func planDenseRelabel(g *vec.Grid, dead map[int]bool) (*reembedPlan, error) {
	d := g.NDims()
	size := g.Size()
	survivors := 0
	for r := 0; r < size; r++ {
		if !dead[r] {
			survivors++
		}
	}
	if survivors == 0 {
		return nil, fmt.Errorf("%w: no survivors", ErrUnrecoverable)
	}
	var best []int
	bestProd, bestOnes, bestDist := -1, 0, 0
	cur := make([]int, d)
	var search func(i, prod int)
	search = func(i, prod int) {
		if i == d {
			ones, dist := 0, 0
			for j, e := range cur {
				if e == 1 {
					ones++
				}
				if delta := e - g.Dims[j]; delta >= 0 {
					dist += delta
				} else {
					dist -= delta
				}
			}
			better := prod > bestProd ||
				(prod == bestProd && ones < bestOnes) ||
				(prod == bestProd && ones == bestOnes && dist < bestDist) ||
				(prod == bestProd && ones == bestOnes && dist == bestDist && lexLess(cur, best))
			if better {
				best = append(best[:0], cur...)
				bestProd, bestOnes, bestDist = prod, ones, dist
			}
			return
		}
		for e := 1; e*prod <= survivors; e++ {
			cur[i] = e
			search(i+1, prod*e)
		}
	}
	search(0, 1)
	dims := append([]int(nil), best...)
	periods := append([]bool(nil), g.Periods...)
	member := make([]int, size)
	placed := 0
	for r := 0; r < size; r++ {
		member[r] = -1
		if !dead[r] && placed < bestProd {
			member[r] = placed
			placed++
		}
	}
	return &reembedPlan{dims: dims, periods: periods, member: member}, nil
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Recovered reports the result of one Recover: either a new Cartesian
// communicator for this rank, or the news that this rank survived but was
// not placed on the shrunk grid (a spare).
type Recovered struct {
	// Comm is the rebuilt neighborhood communicator; nil when Spare.
	Comm *Comm
	// Spare is set when this rank survived but has no slot on the new
	// grid (a survivor in a collapsed slab, or relabeling overflow).
	Spare bool
	// Epoch is the new communication epoch all survivors advanced to.
	Epoch int64
	// Dead lists the world ranks of the old communicator's members agreed
	// dead — the difference between the old and new membership.
	Dead []int
	// Dims is the new grid shape.
	Dims []int
	// Attempts counts shrink-consensus rounds across the whole recovery.
	Attempts int
	// Drained counts stale-epoch messages discarded from this rank's
	// mailbox on the epoch advance.
	Drained int
}

// Recover rebuilds the Cartesian world after member failures: survivors
// shrink to an agreed membership and epoch, compute the re-embedding under
// policy, and construct the new neighborhood communicator (same
// neighborhood, weights, and default algorithm; schedules and plans are
// recompiled lazily by the first collective on it). Collective over the
// survivors of c; returns a typed error — never hangs — when recovery is
// impossible (ErrUnrecoverable, ErrRecoveryFailed, or an mpi terminal
// error).
func (c *Comm) Recover(policy ReembedPolicy) (*Recovered, error) {
	base := c.comm
	// Poison the old generation's user traffic so peers still inside a
	// collective on it fail out and join the consensus. Idempotent.
	base.Revoke()
	maxAttempts := 2*c.Size() + 4
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		nc, info, err := base.RecoverShrink()
		if err != nil {
			return nil, err // typed terminal (ErrRecoveryFailed, all dead, ...)
		}
		// The dead set is agreed data (every survivor derives it from the
		// same shrink membership), so the plan is identical everywhere.
		dead := make(map[int]bool, len(info.Dead))
		for r := 0; r < c.Size(); r++ {
			for _, w := range info.Dead {
				if c.comm.WorldRank(r) == w {
					dead[r] = true
					break
				}
			}
		}
		plan, perr := planReembed(c.grid, dead, policy)
		if perr != nil {
			return nil, perr // deterministic: all survivors return together
		}
		// Translate the plan's membership (old cart ranks) into nc ranks.
		// Shrink renumbers survivors in old rank order and both policies
		// assign new ranks monotonically in old rank order, so the list is
		// strictly increasing and position i in it is exactly new rank i.
		oldToNC := make(map[int]int, nc.Size())
		for i := 0; i < nc.Size(); i++ {
			oldToNC[nc.WorldRank(i)] = i
		}
		var subMembers []int
		valid := true
		for r := 0; r < c.Size(); r++ {
			if plan.member[r] < 0 {
				continue
			}
			ncRank, ok := oldToNC[c.comm.WorldRank(r)]
			if !ok || plan.member[r] != len(subMembers) {
				valid = false
				break
			}
			subMembers = append(subMembers, ncRank)
		}
		if !valid {
			return nil, fmt.Errorf("cart: Recover: internal error: re-embedding plan is not monotonic in shrink order")
		}
		sub, serr := nc.SubsetComm(subMembers)
		// First confirmation: nobody touches the sub-communicator until
		// every survivor reports it was built (or that it is a confirmed
		// spare). A rank whose SubsetComm failed never learned sub's
		// context and could not poison peers blocked inside it — so those
		// peers must not enter it in the first place.
		ok1 := 0
		if serr == nil {
			ok1 = 1
		}
		flag, aerr := nc.Agree(ok1)
		if aerr != nil || flag != 1 {
			if sub != nil {
				sub.Revoke()
			}
			nc.RevokeFull()
			lastErr = firstErr(serr, aerr, fmt.Errorf("cart: Recover: generation %d abandoned", info.Epoch))
			continue
		}
		member := serr == nil && sub != nil
		var ncart *Comm
		ok2 := 1
		var cerr error
		if member {
			// Plans compiled for this generation key on sub's bumped
			// recovery epoch (plancache.go), so *Init after a re-embedding
			// can never bind a pre-recovery cache entry — even when the
			// recovered shape and neighborhood are identical to the old
			// world's. Stale-epoch entries age out via LRU.
			ncart, cerr = NeighborhoodCreate(sub, plan.dims, plan.periods, c.nbh, c.weights, WithAlgorithm(c.algo))
			if cerr != nil {
				ok2 = 0
				sub.Revoke() // free peers blocked in the sub collectives
			}
		}
		// Second confirmation: the new world goes live only once every
		// survivor (members and spares alike) has finished building it.
		flag, aerr = nc.Agree(ok2)
		if aerr != nil || flag != 1 {
			if member {
				sub.Revoke()
			}
			nc.RevokeFull()
			lastErr = firstErr(cerr, aerr, fmt.Errorf("cart: Recover: generation %d abandoned", info.Epoch))
			continue
		}
		rec := &Recovered{
			Comm:     ncart,
			Spare:    !member,
			Epoch:    info.Epoch,
			Dead:     info.Dead,
			Dims:     plan.dims,
			Attempts: info.Attempts,
			Drained:  info.Drained,
		}
		return rec, nil
	}
	return nil, fmt.Errorf("cart: Recover: no stable world after %d attempts (last: %v): %w",
		maxAttempts, lastErr, mpi.ErrRecoveryFailed)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// RecoveryEvent describes one completed recovery, for the OnRecovery hook.
type RecoveryEvent struct {
	// WorldRank identifies the reporting rank stably across epochs.
	WorldRank int
	Epoch     int64
	Dead      []int
	Dims      []int
	Spare     bool
	Attempts  int
	Duration  time.Duration
}

// RecoverConfig configures Recoverable.
type RecoverConfig struct {
	// Policy selects the re-embedding (default CollapseSlab).
	Policy ReembedPolicy
	// MaxRecoveries bounds how many times the body is restarted on a
	// shrunk world before giving up with ErrRecoveryFailed. 0 means the
	// communicator size (more worlds than that cannot exist).
	MaxRecoveries int
	// OnRecovery, when set, is called after each successful recovery.
	OnRecovery func(RecoveryEvent)
	// Log, when set, records each recovery window as a trace span so the
	// outage is visible in the Perfetto export.
	Log *trace.RecoveryLog
}

// RunOutcome reports how a Recoverable call ended.
type RunOutcome struct {
	// Comm is the communicator the body last ran on (the original when no
	// recovery happened); nil when the rank ended up a spare.
	Comm *Comm
	// Spare is set when this rank survived but left the grid.
	Spare bool
	// Recoveries counts completed shrink-and-re-embed cycles.
	Recoveries int
	// Epoch is the final communication epoch.
	Epoch int64
	// Dead accumulates the world ranks declared dead across recoveries.
	Dead []int
	// RecoveryNs is total wall-clock time spent inside recovery.
	RecoveryNs int64
}

// recoverable reports whether err means "peers failed or the communicator
// was revoked" — the failures recovery can absorb. Everything else is
// terminal: deadlock diagnoses, usage errors, and abort cascades — a
// torn-down run wraps the primary rank failure, so the ErrAborted test
// must come first or recovery would spin on a world that no longer exists.
func recoverable(err error) bool {
	if errors.Is(err, mpi.ErrAborted) {
		return false
	}
	return mpi.IsRankFailed(err) || errors.Is(err, mpi.ErrRevoked)
}

// Recoverable runs body on c, and when it fails because members crashed,
// drives recovery and re-runs it on the shrunk world until it completes, a
// typed terminal error occurs, or cfg.MaxRecoveries is exhausted. The body
// must be restartable: it is re-invoked from scratch with the current
// communicator and must not carry state from a failed attempt.
//
// Completion is agreed: after every body attempt, the world's survivors
// Agree on whether all of them finished, so ranks whose local attempt
// happened to complete (sparse neighborhoods need not touch a crashed
// rank) still join their peers' recovery instead of running ahead on a
// world about to be torn down. The agreement also serializes consecutive
// Recoverable calls on the same communicator.
func Recoverable(c *Comm, cfg RecoverConfig, body func(*Comm) error) (*RunOutcome, error) {
	cur := c
	out := &RunOutcome{Comm: c, Epoch: c.comm.Epoch()}
	maxRec := cfg.MaxRecoveries
	if maxRec <= 0 {
		maxRec = c.Size()
	}
	for {
		err := body(cur)
		if err == nil {
			flag, aerr := cur.comm.Agree(1)
			if aerr == nil && flag == 1 {
				return out, nil
			}
			// A peer failed or bailed: fall through to recovery with it.
		} else if !recoverable(err) {
			return out, err
		} else {
			// Poison the generation so peers still inside the body fail out,
			// then join the completion agreement they may be blocked in.
			cur.comm.Revoke()
			cur.comm.Agree(0)
		}
		if out.Recoveries >= maxRec {
			return out, fmt.Errorf("cart: Recoverable: gave up after %d recoveries (last: %v): %w",
				out.Recoveries, err, mpi.ErrRecoveryFailed)
		}
		start := time.Now()
		var logStart time.Duration
		if cfg.Log != nil {
			logStart = cfg.Log.Now()
		}
		rec, rerr := cur.Recover(cfg.Policy)
		if rerr != nil {
			return out, rerr
		}
		elapsed := time.Since(start)
		out.Recoveries++
		out.Epoch = rec.Epoch
		out.RecoveryNs += elapsed.Nanoseconds()
		for _, w := range rec.Dead {
			seen := false
			for _, d := range out.Dead {
				if d == w {
					seen = true
					break
				}
			}
			if !seen {
				out.Dead = append(out.Dead, w)
			}
		}
		worldRank := cur.comm.WorldRank(cur.comm.Rank())
		if set := cur.comm.MetricsSet(); set != nil {
			set.Counter("cart.recoveries").Inc()
			set.Histogram("cart.recovery.ns").Observe(elapsed.Nanoseconds())
		}
		if cfg.Log != nil {
			cfg.Log.Add(trace.RecoverySpan{
				Rank:  worldRank,
				Epoch: rec.Epoch,
				Dead:  append([]int(nil), rec.Dead...),
				Start: logStart,
				End:   cfg.Log.Now(),
			})
		}
		if cfg.OnRecovery != nil {
			cfg.OnRecovery(RecoveryEvent{
				WorldRank: worldRank,
				Epoch:     rec.Epoch,
				Dead:      append([]int(nil), rec.Dead...),
				Dims:      append([]int(nil), rec.Dims...),
				Spare:     rec.Spare,
				Attempts:  rec.Attempts,
				Duration:  elapsed,
			})
		}
		if rec.Spare {
			out.Comm = nil
			out.Spare = true
			return out, nil
		}
		if rec.Comm == nil {
			return out, fmt.Errorf("cart: Recoverable: internal error: recovery reported membership without a communicator")
		}
		cur = rec.Comm
		out.Comm = cur
	}
}

// RunRecoverable runs one regular neighborhood collective under the
// recovery loop: it compiles the plan for the CURRENT world each attempt,
// seeds the send buffer with the oracle convention (element i of rank r is
// r*1_000_000+i, so a recovered run's payloads equal a fresh run on the
// final world shape), and returns the received payload alongside the
// outcome. recv is nil for spares.
func RunRecoverable(c *Comm, cfg RecoverConfig, op OpKind, m int, algo Algorithm, opts ...PlanOption) (*RunOutcome, []int64, error) {
	var recv []int64
	out, err := Recoverable(c, cfg, func(cur *Comm) error {
		recv = nil
		t := cur.NeighborCount()
		var plan *Plan
		var perr error
		sendLen := t * m
		if op == OpAllgather {
			sendLen = m
			plan, perr = AllgatherInit(cur, m, algo, opts...)
		} else {
			plan, perr = AlltoallInit(cur, m, algo, opts...)
		}
		if perr != nil {
			return perr
		}
		send := make([]int64, sendLen)
		for i := range send {
			send[i] = int64(cur.Rank())*1_000_000 + int64(i)
		}
		r := make([]int64, t*m)
		for i := range r {
			r[i] = -1
		}
		if rerr := Run(plan, send, r); rerr != nil {
			return rerr
		}
		recv = r
		return nil
	})
	if err != nil || out.Spare {
		return out, nil, err
	}
	return out, recv, nil
}
