package cart

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// freshRecv runs the collective on a clean world of the given shape and
// returns each rank's received payload — the differential oracle for
// recovered runs: RunRecoverable seeds sends by current rank, so a
// recovered world's payloads must equal a fresh world's of the same shape.
func freshRecv(t *testing.T, dims []int, nbh vec.Neighborhood, op OpKind, m int) [][]int64 {
	t.Helper()
	procs := 1
	for _, d := range dims {
		procs *= d
	}
	res := make([][]int64, procs)
	err := mpi.Run(mpi.Config{Procs: procs, Timeout: 30 * time.Second}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		_, recv, err := RunRecoverable(c, RecoverConfig{}, op, m, Trivial)
		if err != nil {
			return err
		}
		res[w.Rank()] = recv
		return nil
	})
	if err != nil {
		t.Fatalf("oracle run on %v: %v", dims, err)
	}
	return res
}

// calibrateCrash measures the victim's op count right after communicator
// creation on a clean run, so an injected crash can be aimed at the start
// of the exchange (after NeighborhoodCreate's collectives, before the
// victim has sent to all its neighbors).
func calibrateCrash(t *testing.T, procs, victim int, dims []int, nbh vec.Neighborhood) int {
	t.Helper()
	at, _ := calibrateWindow(t, procs, victim, dims, nbh)
	return at
}

// calibrateWindow returns (an op inside the first collective's exchange,
// the victim's op count after one full RunRecoverable).
func calibrateWindow(t *testing.T, procs, victim int, dims []int, nbh vec.Neighborhood) (int, int) {
	t.Helper()
	var startOp, endOp int
	err := mpi.Run(mpi.Config{Procs: procs, Timeout: 30 * time.Second}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		if w.Rank() == victim {
			startOp = w.OpCount()
		}
		if _, _, err := RunRecoverable(c, RecoverConfig{}, OpAlltoall, 2, Trivial); err != nil {
			return err
		}
		if w.Rank() == victim {
			endOp = w.OpCount()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("calibration run: %v", err)
	}
	if endOp <= startOp+2 {
		t.Fatalf("calibration found no exchange window (start %d, end %d)", startOp, endOp)
	}
	return startOp + 2, endOp
}

// TestRunRecoverableMatrix is the PR's acceptance scenario: a crash in the
// middle of a collective on a 3x3 torus must end, for both re-embedding
// policies and all three executors, with every survivor completing the
// collective on the shrunk world and payloads identical to a fresh run of
// that shape.
func TestRunRecoverableMatrix(t *testing.T) {
	const procs, victim, m = 9, 4, 2
	dims := []int{3, 3}
	nbh, err := vec.Stencil(2, 3, -1) // Moore: every rank neighbors the victim
	if err != nil {
		t.Fatal(err)
	}
	atOp := calibrateCrash(t, procs, victim, dims, nbh)

	execs := []struct {
		name string
		algo Algorithm
		opts []PlanOption
	}{
		{"trivial", Trivial, nil},
		{"combining-blocking", Combining, []PlanOption{WithBlockingRounds()}},
		{"pipelined", Combining, nil},
	}
	policies := []ReembedPolicy{CollapseSlab, DenseRelabel}
	// Victim 4 sits at (1,1): CollapseSlab removes row 1 (survivors 3 and 5
	// become spares) leaving a 2x3; DenseRelabel keeps all 8 survivors on
	// the largest 2-D grid that fits, 2x4.
	wantDims := map[ReembedPolicy][]int{CollapseSlab: {2, 3}, DenseRelabel: {2, 4}}
	wantSpares := map[ReembedPolicy]map[int]bool{CollapseSlab: {3: true, 5: true}, DenseRelabel: {}}

	oracles := map[ReembedPolicy][][]int64{}
	for _, p := range policies {
		oracles[p] = freshRecv(t, wantDims[p], nbh, OpAlltoall, m)
	}

	for _, e := range execs {
		for _, p := range policies {
			t.Run(fmt.Sprintf("%s/%s", e.name, p), func(t *testing.T) {
				outs := make([]*RunOutcome, procs)
				recvs := make([][]int64, procs)
				errs := make([]error, procs)
				done := make(chan error, 1)
				go func() {
					done <- mpi.Run(mpi.Config{
						Procs:   procs,
						Timeout: 30 * time.Second,
						Faults:  &mpi.FaultPlan{Crashes: []mpi.Crash{{Rank: victim, AtOp: atOp}}},
					}, func(w *mpi.Comm) error {
						c, err := NeighborhoodCreate(w, dims, nil, nbh, nil, WithAlgorithm(e.algo))
						if err != nil {
							return err
						}
						out, recv, err := RunRecoverable(c, RecoverConfig{Policy: p}, OpAlltoall, m, e.algo, e.opts...)
						outs[w.Rank()], recvs[w.Rank()], errs[w.Rank()] = out, recv, err
						return err
					})
				}()
				var runErr error
				select {
				case runErr = <-done:
				case <-time.After(25 * time.Second):
					t.Fatal("run hung after injected crash")
				}
				if !mpi.IsRankFailed(runErr) {
					t.Fatalf("run error = %v, want the injected RankFailedError", runErr)
				}
				oracle := oracles[p]
				for r := 0; r < procs; r++ {
					if r == victim {
						continue
					}
					if errs[r] != nil {
						t.Fatalf("survivor %d failed: %v", r, errs[r])
					}
					out := outs[r]
					if out == nil || out.Recoveries < 1 {
						t.Fatalf("survivor %d did not recover (out=%+v)", r, out)
					}
					if out.Epoch < 1 {
						t.Fatalf("survivor %d epoch = %d, want >= 1", r, out.Epoch)
					}
					if len(out.Dead) != 1 || out.Dead[0] != victim {
						t.Fatalf("survivor %d dead set = %v, want [%d]", r, out.Dead, victim)
					}
					if wantSpares[p][r] {
						if !out.Spare || out.Comm != nil {
							t.Fatalf("rank %d should be a spare under %s, got %+v", r, p, out)
						}
						continue
					}
					if out.Spare || out.Comm == nil {
						t.Fatalf("rank %d unexpectedly a spare under %s", r, p)
					}
					gotDims := out.Comm.Grid().Dims
					if fmt.Sprint(gotDims) != fmt.Sprint(wantDims[p]) {
						t.Fatalf("rank %d recovered onto %v, want %v", r, gotDims, wantDims[p])
					}
					want := oracle[out.Comm.Rank()]
					if fmt.Sprint(recvs[r]) != fmt.Sprint(want) {
						t.Fatalf("rank %d (new rank %d) payload\n got %v\nwant %v",
							r, out.Comm.Rank(), recvs[r], want)
					}
				}
			})
		}
	}
}

// TestRecoverAllgather covers the second regular operation through the
// same crash-and-recover path.
func TestRecoverAllgather(t *testing.T) {
	const procs, victim, m = 9, 4, 3
	dims := []int{3, 3}
	nbh, err := vec.Stencil(2, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	atOp := calibrateCrash(t, procs, victim, dims, nbh)
	oracle := freshRecv(t, []int{2, 4}, nbh, OpAllgather, m)
	outs := make([]*RunOutcome, procs)
	recvs := make([][]int64, procs)
	runErr := mpi.Run(mpi.Config{
		Procs:   procs,
		Timeout: 30 * time.Second,
		Faults:  &mpi.FaultPlan{Crashes: []mpi.Crash{{Rank: victim, AtOp: atOp}}},
	}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		out, recv, err := RunRecoverable(c, RecoverConfig{Policy: DenseRelabel}, OpAllgather, m, Trivial)
		outs[w.Rank()], recvs[w.Rank()] = out, recv
		return err
	})
	if !mpi.IsRankFailed(runErr) {
		t.Fatalf("run error = %v, want the injected RankFailedError", runErr)
	}
	for r := 0; r < procs; r++ {
		if r == victim {
			continue
		}
		out := outs[r]
		if out == nil || out.Comm == nil || out.Recoveries < 1 {
			t.Fatalf("survivor %d did not recover: %+v", r, out)
		}
		want := oracle[out.Comm.Rank()]
		if fmt.Sprint(recvs[r]) != fmt.Sprint(want) {
			t.Fatalf("rank %d payload mismatch\n got %v\nwant %v", r, recvs[r], want)
		}
	}
}

// TestRecoverTwoConcurrentCrashes: two ranks die in the same epoch. All
// survivors must agree on one dead set (both victims), converge to the
// same shrunk world, and produce fresh-world payloads on it.
func TestRecoverTwoConcurrentCrashes(t *testing.T) {
	const procs, m = 12, 1
	dims := []int{3, 4}
	nbh, err := vec.Stencil(2, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Op counts differ per rank inside NeighborhoodCreate (binomial trees),
	// so each victim's crash is calibrated on its own op clock to land in
	// the exchange, not communicator creation.
	atOp5 := calibrateCrash(t, procs, 5, dims, nbh)
	atOp6 := calibrateCrash(t, procs, 6, dims, nbh)
	outs := make([]*RunOutcome, procs)
	recvs := make([][]int64, procs)
	errs := make([]error, procs)
	done := make(chan error, 1)
	go func() {
		done <- mpi.Run(mpi.Config{
			Procs:   procs,
			Timeout: 30 * time.Second,
			Faults: &mpi.FaultPlan{Crashes: []mpi.Crash{
				{Rank: 5, AtOp: atOp5},
				{Rank: 6, AtOp: atOp6},
			}},
		}, func(w *mpi.Comm) error {
			c, err := NeighborhoodCreate(w, dims, nil, nbh, nil)
			if err != nil {
				return err
			}
			out, recv, err := RunRecoverable(c, RecoverConfig{Policy: DenseRelabel}, OpAlltoall, m, Trivial)
			outs[w.Rank()], recvs[w.Rank()], errs[w.Rank()] = out, recv, err
			return err
		})
	}()
	var runErr error
	select {
	case runErr = <-done:
	case <-time.After(25 * time.Second):
		t.Fatal("run hung after concurrent crashes")
	}
	if !mpi.IsRankFailed(runErr) {
		t.Fatalf("run error = %v, want a RankFailedError", runErr)
	}
	// All survivors must land on one agreed final shape; verify payloads
	// against a fresh oracle of that shape.
	var finalDims []int
	for r := 0; r < procs; r++ {
		if r == 5 || r == 6 {
			continue
		}
		out := outs[r]
		if out == nil || out.Comm == nil || out.Recoveries < 1 {
			t.Fatalf("survivor %d did not recover: %+v (err %v)", r, out, errs[r])
		}
		if len(out.Dead) != 2 {
			t.Fatalf("survivor %d dead set = %v, want both victims", r, out.Dead)
		}
		if finalDims == nil {
			finalDims = out.Comm.Grid().Dims
		} else if fmt.Sprint(out.Comm.Grid().Dims) != fmt.Sprint(finalDims) {
			t.Fatalf("survivor %d on %v, others on %v — worlds diverged",
				r, out.Comm.Grid().Dims, finalDims)
		}
	}
	oracle := freshRecv(t, finalDims, nbh, OpAlltoall, m)
	for r := 0; r < procs; r++ {
		if r == 5 || r == 6 {
			continue
		}
		want := oracle[outs[r].Comm.Rank()]
		if fmt.Sprint(recvs[r]) != fmt.Sprint(want) {
			t.Fatalf("rank %d payload mismatch\n got %v\nwant %v", r, recvs[r], want)
		}
	}
}

// TestRecoverCrashDuringRecovery: a second rank dies while the first
// recovery is in flight (its op count places the crash in the revoke /
// consensus window, not the collective). The consensus must absorb the
// nested failure — survivors converge to one world excluding both victims
// with verified payloads.
func TestRecoverCrashDuringRecovery(t *testing.T) {
	const procs, m = 9, 2
	dims := []int{3, 3}
	nbh, err := vec.Stencil(2, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	atOp := calibrateCrash(t, procs, 4, dims, nbh)
	outs := make([]*RunOutcome, procs)
	recvs := make([][]int64, procs)
	errs := make([]error, procs)
	done := make(chan error, 1)
	go func() {
		done <- mpi.Run(mpi.Config{
			Procs:   procs,
			Timeout: 30 * time.Second,
			Faults: &mpi.FaultPlan{Crashes: []mpi.Crash{
				{Rank: 4, AtOp: atOp},
				// By +10 ops rank 7 has failed out of the collective and is
				// inside Revoke/Agree/Shrink traffic: a nested failure.
				{Rank: 7, AtOp: atOp + 10},
			}},
		}, func(w *mpi.Comm) error {
			c, err := NeighborhoodCreate(w, dims, nil, nbh, nil)
			if err != nil {
				return err
			}
			out, recv, err := RunRecoverable(c, RecoverConfig{Policy: DenseRelabel}, OpAlltoall, m, Trivial)
			outs[w.Rank()], recvs[w.Rank()], errs[w.Rank()] = out, recv, err
			return err
		})
	}()
	var runErr error
	select {
	case runErr = <-done:
	case <-time.After(25 * time.Second):
		t.Fatal("run hung on nested crash during recovery")
	}
	if !mpi.IsRankFailed(runErr) {
		t.Fatalf("run error = %v, want a RankFailedError", runErr)
	}
	var finalDims []int
	for r := 0; r < procs; r++ {
		if r == 4 || r == 7 {
			continue
		}
		out := outs[r]
		if out == nil || out.Comm == nil || out.Recoveries < 1 {
			for i := 0; i < procs; i++ {
				t.Logf("rank %d: out=%+v err=%v", i, outs[i], errs[i])
			}
			t.Logf("run error: %v", runErr)
			t.Fatalf("survivor %d did not recover: %+v (err %v)", r, out, errs[r])
		}
		if len(out.Dead) != 2 {
			t.Fatalf("survivor %d dead set = %v, want both victims", r, out.Dead)
		}
		if finalDims == nil {
			finalDims = out.Comm.Grid().Dims
		} else if fmt.Sprint(out.Comm.Grid().Dims) != fmt.Sprint(finalDims) {
			t.Fatalf("worlds diverged: rank %d on %v vs %v", r, out.Comm.Grid().Dims, finalDims)
		}
	}
	oracle := freshRecv(t, finalDims, nbh, OpAlltoall, m)
	for r := 0; r < procs; r++ {
		if r == 4 || r == 7 {
			continue
		}
		want := oracle[outs[r].Comm.Rank()]
		if fmt.Sprint(recvs[r]) != fmt.Sprint(want) {
			t.Fatalf("rank %d payload mismatch\n got %v\nwant %v", r, recvs[r], want)
		}
	}
}

// TestRecoverToSingleRank: on a 2-rank world the peer's death must shrink
// all the way down to a 1-rank torus, where every neighbor offset wraps to
// self and the collective still completes.
func TestRecoverToSingleRank(t *testing.T) {
	const procs, victim, m = 2, 1, 2
	dims := []int{2}
	nbh, err := vec.Stencil(1, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	atOp := calibrateCrash(t, procs, victim, dims, nbh)
	var out *RunOutcome
	var recv []int64
	runErr := mpi.Run(mpi.Config{
		Procs:   procs,
		Timeout: 30 * time.Second,
		Faults:  &mpi.FaultPlan{Crashes: []mpi.Crash{{Rank: victim, AtOp: atOp}}},
	}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		var rerr error
		o, rv, rerr := RunRecoverable(c, RecoverConfig{Policy: CollapseSlab}, OpAlltoall, m, Trivial)
		if w.Rank() == 0 {
			out, recv = o, rv
		}
		return rerr
	})
	if !mpi.IsRankFailed(runErr) {
		t.Fatalf("run error = %v, want the injected RankFailedError", runErr)
	}
	if out == nil || out.Comm == nil || out.Comm.Size() != 1 {
		t.Fatalf("survivor did not recover to a 1-rank world: %+v", out)
	}
	oracle := freshRecv(t, []int{1}, nbh, OpAlltoall, m)
	if fmt.Sprint(recv) != fmt.Sprint(oracle[0]) {
		t.Fatalf("payload mismatch on 1-rank world\n got %v\nwant %v", recv, oracle[0])
	}
}

// TestRecoverLastSurvivorDies: the final survivor crashing mid-recovery
// (or on its shrunken world) must surface as a typed error from the run —
// never a hang.
func TestRecoverLastSurvivorDies(t *testing.T) {
	const procs, m = 2, 1
	dims := []int{2}
	nbh, err := vec.Stencil(1, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	atOp := calibrateCrash(t, procs, 1, dims, nbh)
	done := make(chan error, 1)
	go func() {
		done <- mpi.Run(mpi.Config{
			Procs:   procs,
			Timeout: 20 * time.Second,
			Faults: &mpi.FaultPlan{Crashes: []mpi.Crash{
				{Rank: 1, AtOp: atOp},
				{Rank: 0, AtOp: atOp + 8}, // lands inside rank 0's recovery
			}},
		}, func(w *mpi.Comm) error {
			c, err := NeighborhoodCreate(w, dims, nil, nbh, nil)
			if err != nil {
				return err
			}
			_, _, err = RunRecoverable(c, RecoverConfig{Policy: CollapseSlab}, OpAlltoall, m, Trivial)
			return err
		})
	}()
	select {
	case err := <-done:
		if !mpi.IsRankFailed(err) {
			t.Fatalf("run error = %v, want a typed RankFailedError", err)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("last-survivor death hung instead of failing typed")
	}
}

// TestRecoverableSequentialCalls: the completion agreement must serialize
// consecutive Recoverable calls on the same communicator — a clean call
// followed by a faulty one recovers exactly once, and the clean call adds
// no recoveries.
func TestRecoverableSequentialCalls(t *testing.T) {
	const procs, victim, m = 9, 4, 1
	dims := []int{3, 3}
	nbh, err := vec.Stencil(2, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	startAt, endOp := calibrateWindow(t, procs, victim, dims, nbh)
	_ = startAt
	// The victim survives the whole first collective (it crashes early in
	// the second), so call 1 must complete with zero recoveries everywhere.
	firstRec := make([]int, procs)
	secondRec := make([]int, procs)
	runErr := mpi.Run(mpi.Config{
		Procs:   procs,
		Timeout: 30 * time.Second,
		Faults:  &mpi.FaultPlan{Crashes: []mpi.Crash{{Rank: victim, AtOp: endOp + 2}}},
	}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		out1, _, err := RunRecoverable(c, RecoverConfig{Policy: DenseRelabel}, OpAlltoall, m, Trivial)
		if err != nil {
			return err
		}
		firstRec[w.Rank()] = out1.Recoveries
		out2, _, err := RunRecoverable(out1.Comm, RecoverConfig{Policy: DenseRelabel}, OpAlltoall, m, Trivial)
		if err != nil {
			return err
		}
		secondRec[w.Rank()] = out2.Recoveries
		return nil
	})
	if !mpi.IsRankFailed(runErr) {
		t.Fatalf("run error = %v, want the injected RankFailedError", runErr)
	}
	for r := 0; r < procs; r++ {
		if r == victim {
			continue
		}
		if firstRec[r] != 0 {
			t.Fatalf("rank %d recovered %d times in the clean first call", r, firstRec[r])
		}
		if secondRec[r] < 1 {
			t.Fatalf("rank %d did not recover in the faulty second call", r)
		}
	}
}

// TestPlanPoliciesPure verifies the membership planners directly: both
// policies are pure functions of (grid, dead set), assign new ranks
// monotonically in old rank order, and report impossible patterns as
// ErrUnrecoverable instead of producing a broken plan.
func TestPlanPoliciesPure(t *testing.T) {
	g, err := vec.NewGrid([]int{3, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dead := map[int]bool{4: true}
	slab, err := planCollapseSlab(g, dead)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(slab.dims) != "[2 3]" {
		t.Fatalf("collapse-slab dims = %v, want [2 3]", slab.dims)
	}
	// Row 1 removed: ranks 3,4,5 unplaced, everyone else renumbered densely.
	wantMember := []int{0, 1, 2, -1, -1, -1, 3, 4, 5}
	if fmt.Sprint(slab.member) != fmt.Sprint(wantMember) {
		t.Fatalf("collapse-slab member = %v, want %v", slab.member, wantMember)
	}

	dense, err := planDenseRelabel(g, dead)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(dense.dims) != "[2 4]" {
		t.Fatalf("dense-relabel dims = %v, want [2 4]", dense.dims)
	}
	placed := 0
	last := -1
	for r, nr := range dense.member {
		if r == 4 && nr != -1 {
			t.Fatal("dense-relabel placed a dead rank")
		}
		if nr >= 0 {
			if nr <= last {
				t.Fatalf("dense-relabel ranks not monotonic at old rank %d", r)
			}
			last = nr
			placed++
		}
	}
	if placed != 8 {
		t.Fatalf("dense-relabel placed %d survivors, want 8", placed)
	}

	// A dead rank in every row and every column: no slab dimension works.
	allSlabsDead := map[int]bool{0: true, 4: true, 8: true}
	if _, err := planCollapseSlab(g, allSlabsDead); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("collapse-slab on diagonal deaths = %v, want ErrUnrecoverable", err)
	}
	// Dense relabel still fits the 6 survivors.
	dense, err = planDenseRelabel(g, allSlabsDead)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(dense.dims) != "[2 3]" {
		t.Fatalf("dense-relabel dims after diagonal deaths = %v, want [2 3]", dense.dims)
	}
}
