package cart

import (
	"math"

	"cartcc/internal/vec"
)

// Stats summarizes the schedule-relevant structure of a t-neighborhood —
// the quantities of Table 1 of the paper and of Propositions 3.2 and 3.3.
type Stats struct {
	// T is the neighborhood size t, including the zero offset if present.
	T int
	// TComm is the number of communication rounds of the trivial
	// algorithm: the neighbors with a non-zero offset.
	TComm int
	// Ck[k] is the number of distinct non-zero k-th coordinates.
	Ck []int
	// C = Σ_k Ck is the number of rounds of both message-combining
	// schedules.
	C int
	// VolAlltoall = Σ_i z_i is the per-process volume in blocks of the
	// message-combining alltoall (Proposition 3.2).
	VolAlltoall int
	// VolAllgather is the edge count of the increasing-C_k allgather tree
	// (Proposition 3.3).
	VolAllgather int
	// CutoffRatio is (t−C)/(V_alltoall−t), the factor multiplying α/β in
	// the paper's cut-off block size below which message combining wins
	// the alltoall (Table 1's bottom row; +Inf when combining always
	// wins, 0 when it never does).
	CutoffRatio float64
}

// ComputeStats derives the Table 1 quantities from a neighborhood in
// O(td) time.
func ComputeStats(nbh vec.Neighborhood) Stats {
	d := nbh.Dims()
	s := Stats{T: len(nbh), Ck: make([]int, d)}
	for _, rel := range nbh {
		if z := rel.NonZeros(); z > 0 {
			s.TComm++
			s.VolAlltoall += z
		}
	}
	for k := 0; k < d; k++ {
		s.Ck[k] = vec.CountDistinctNonZero(nbh, k)
		s.C += s.Ck[k]
	}
	s.VolAllgather = BuildAllgatherTree(nbh, nil).Edges
	switch {
	case s.C >= s.T:
		s.CutoffRatio = 0
	case s.VolAlltoall <= s.T:
		s.CutoffRatio = math.Inf(1)
	default:
		s.CutoffRatio = float64(s.T-s.C) / float64(s.VolAlltoall-s.T)
	}
	return s
}

// binomial returns the binomial coefficient C(n, k).
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

// MooreAlltoallVolume is the closed-form per-process alltoall volume of
// the (d, n) stencil family from Section 3.1 of the paper:
// V = Σ_j j·(n−1)^j·C(d,j) — there are (n−1)^j·C(d,j) offsets with j
// non-zero coordinates, each of whose blocks travels j hops.
func MooreAlltoallVolume(d, n int) int {
	v := 0
	pw := 1
	for j := 1; j <= d; j++ {
		pw *= n - 1
		v += j * pw * binomial(d, j)
	}
	return v
}

// MooreAllgatherVolume is the closed-form per-process allgather volume of
// the (d, n) stencil family from Section 3.2: V = n^d − 1, which equals
// the trivial algorithm's volume — combining then wins at every block
// size.
func MooreAllgatherVolume(d, n int) int {
	v := 1
	for i := 0; i < d; i++ {
		v *= n
	}
	return v - 1
}

// MooreRounds is the round count C = d·(n−1) of the (d, n) stencil family
// for both combining schedules.
func MooreRounds(d, n int) int { return d * (n - 1) }
