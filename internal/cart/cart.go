// Package cart implements Cartesian Collective Communication (Träff &
// Hunold, ICPP 2019): sparse collective alltoall and allgather operations
// over processes organized in a d-dimensional torus or mesh, with
// neighborhoods given as lists of relative coordinate offsets that are
// identical (isomorphic) on every process.
//
// The isomorphism requirement lets every process compute the same correct,
// deadlock-free communication schedule locally in O(td) time. Two schedule
// families are provided: the trivial t-round algorithm (Listing 4 of the
// paper) and the message-combining algorithms (Algorithms 1 and 2) that
// route blocks dimension-wise through intermediate processes, reducing the
// number of communication rounds from t to C = Σ_k C_k at the price of a
// higher communication volume — a trade that wins whenever blocks are small
// enough that per-message latency dominates.
package cart

import (
	"fmt"
	"sync/atomic"

	"cartcc/internal/mpi"
	"cartcc/internal/trace"
	"cartcc/internal/vec"
)

// Algorithm selects the schedule family used by the collective operations.
type Algorithm int

const (
	// Combining uses the message-combining schedules of Algorithms 1 and 2
	// (d communication phases, C rounds). Requires a fully periodic torus.
	Combining Algorithm = iota
	// Trivial uses the t-round send-receive schedule of Listing 4.
	Trivial
	// Auto chooses per operation at first execution using the
	// executor-consistent crossover of select.go, with machine constants
	// from the run's cost model, an installed tune.Machine profile, or
	// the built-in defaults — in that order.
	Auto
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Combining:
		return "combining"
	case Trivial:
		return "trivial"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Comm is a Cartesian-neighborhood communicator: an MPI-style communicator
// with a d-dimensional grid, an isomorphic t-neighborhood, and precomputed
// neighbor ranks and schedule structure. It is created collectively by
// NeighborhoodCreate (the paper's Cart_neighborhood_create, Listing 1).
type Comm struct {
	comm *mpi.Comm
	grid *vec.Grid
	nbh  vec.Neighborhood
	// targets[i] is the rank of target neighbor i (R + N[i]); -1 when the
	// displacement leaves a non-periodic mesh (MPI_PROC_NULL).
	targets []int
	// sources[i] is the rank of source neighbor i (R − N[i]); -1 as above.
	sources []int
	weights []int
	algo    Algorithm

	// Cached symbolic schedules (neighborhood structure only, block-size
	// independent — Section 3.3 of the paper).
	alltoallSched  *Schedule
	allgatherSched *Schedule

	// Cached executable plans for the regular operations, keyed by
	// (operation, algorithm, block size).
	plans map[planKey]*Plan

	// cmet caches the cart-layer metric handles of this rank's registry
	// set once per communicator (nil when metrics are off), shared by
	// every plan bound to it.
	cmet *cartMetrics
	// flatNbh, shapeHash and nbhHash are the precomputed fingerprint
	// inputs of the shared plan cache (plancache.go): the flattened
	// ordered offsets, and FNV hashes of (dims, periods) and of the
	// offsets.
	flatNbh   []int
	shapeHash uint64
	nbhHash   uint64

	// eng is the communicator's progress engine (engine.go), created
	// lazily at the first Start; alog is the optional per-future trace
	// log its workers record into (atomic: workers read it while the
	// owning goroutine may attach one).
	eng  *engine
	alog atomic.Pointer[trace.AsyncLog]
}

type planKey struct {
	op   OpKind
	algo Algorithm
	m    int
}

// Option configures NeighborhoodCreate.
type Option func(*options)

type options struct {
	algo    Algorithm
	reorder bool
}

// WithAlgorithm sets the default schedule family for the communicator's
// collective operations. The default is Auto.
func WithAlgorithm(a Algorithm) Option {
	return func(o *options) { o.algo = a }
}

// WithReorder requests topology-aware rank reordering (the paper's reorder
// flag). Unlike the MPI libraries the paper examined — which accept the
// flag but keep the identity mapping — this implementation renumbers ranks
// when the run's cost model declares a node hierarchy: the torus is tiled
// into node-sized subgrid blocks so that stencil neighbors co-locate
// (reorder.go). Without a hierarchical model, or when the grid cannot be
// tiled, the mapping stays the identity.
func WithReorder() Option {
	return func(o *options) { o.reorder = true }
}

// reorderPermutation decides the rank renumbering for NeighborhoodCreate:
// nil keeps the identity. With weights (or any neighborhood) the block
// shape is chosen by searching all node-tile factorizations for the best
// weighted intra-node traffic fraction; the search is deterministic from
// shared data, so all processes agree.
func reorderPermutation(base *mpi.Comm, grid *vec.Grid, nbh vec.Neighborhood, weights []int, reorder bool) []int {
	if !reorder {
		return nil
	}
	model := base.Model()
	if model == nil || model.Hierarchy == nil {
		return nil
	}
	perm, ok := BestBlockedPermutation(grid, model.Hierarchy.CoresPerNode, nbh, weights)
	if !ok {
		return nil
	}
	return perm
}

// NeighborhoodCreate creates a Cartesian-neighborhood communicator over
// base: processes are arranged in the torus/mesh given by dims and periods
// (nil periods = fully periodic), and every process declares the same
// ordered list of relative target offsets. weights may be nil
// (unweighted). Collective; every process must pass exactly the same
// dims, periods, neighborhood and weights — the Cartesian (isomorphism)
// requirement. The requirement is verified collectively at creation time
// with the O(t) check of Section 2.2, so a mismatched caller fails here
// rather than corrupting a later collective.
func NeighborhoodCreate(base *mpi.Comm, dims []int, periods []bool, neighborhood vec.Neighborhood, weights []int, opts ...Option) (*Comm, error) {
	var o options
	o.algo = Auto
	for _, opt := range opts {
		opt(&o)
	}
	grid, err := vec.NewGrid(dims, periods)
	if err != nil {
		return nil, err
	}
	if grid.Size() != base.Size() {
		return nil, fmt.Errorf("cart: grid %v has %d processes, communicator has %d", dims, grid.Size(), base.Size())
	}
	if err := neighborhood.Validate(grid.NDims()); err != nil {
		return nil, err
	}
	if weights != nil && len(weights) != len(neighborhood) {
		return nil, fmt.Errorf("cart: %d weights for %d neighbors", len(weights), len(neighborhood))
	}
	if err := verifyIsomorphic(base, grid, neighborhood); err != nil {
		return nil, err
	}
	var comm *mpi.Comm
	if perm := reorderPermutation(base, grid, neighborhood, weights, o.reorder); perm != nil {
		// Topology-aware renumbering: block the torus onto the machine's
		// nodes so stencil neighbors co-locate (see reorder.go). All
		// processes compute the same permutation from shared data.
		comm, err = base.Remap(perm)
	} else {
		comm, err = base.Dup()
	}
	if err != nil {
		return nil, err
	}
	c := &Comm{
		comm:    comm,
		grid:    grid,
		nbh:     neighborhood.Clone(),
		weights: append([]int(nil), weights...),
		algo:    o.algo,
		plans:   make(map[planKey]*Plan),
		cmet:    newCartMetrics(comm.MetricsSet()),
	}
	c.flatNbh = c.nbh.Flatten()
	h := fnvInt(fnvOffset, len(dims))
	for i, dim := range dims {
		h = fnvInt(h, dim)
		p := 0
		if grid.Periods[i] {
			p = 1
		}
		h = fnvInt(h, p)
	}
	c.shapeHash = h
	h = fnvInt(fnvOffset, len(c.flatNbh))
	for _, x := range c.flatNbh {
		h = fnvInt(h, x)
	}
	c.nbhHash = h
	c.targets = make([]int, len(c.nbh))
	c.sources = make([]int, len(c.nbh))
	for i, rel := range c.nbh {
		if r, ok := grid.RankDisplace(comm.Rank(), rel); ok {
			c.targets[i] = r
		} else {
			c.targets[i] = ProcNull
		}
		if r, ok := grid.RankDisplace(comm.Rank(), rel.Neg()); ok {
			c.sources[i] = r
		} else {
			c.sources[i] = ProcNull
		}
	}
	return c, nil
}

// NeighborhoodCreateFlat is NeighborhoodCreate with the neighborhood given
// as a flattened t×d offset array, the exact argument convention of the
// paper's Cart_neighborhood_create (Listing 1).
func NeighborhoodCreateFlat(base *mpi.Comm, d int, dims []int, periods []bool, targetRelative []int, weights []int, opts ...Option) (*Comm, error) {
	nbh, err := vec.Unflatten(targetRelative, d)
	if err != nil {
		return nil, err
	}
	return NeighborhoodCreate(base, dims, periods, nbh, weights, opts...)
}

// ProcNull marks a missing neighbor on a non-periodic mesh, like
// MPI_PROC_NULL: communication with it is skipped.
const ProcNull = -1

// verifyIsomorphic performs the O(t) collective check of Section 2.2: the
// root broadcasts its neighborhood size and offsets; every process compares
// against its own. (The paper uses this check to auto-detect Cartesian
// neighborhoods in dist-graph creation; here it also guards the explicit
// constructor against inconsistent callers.)
func verifyIsomorphic(base *mpi.Comm, grid *vec.Grid, nbh vec.Neighborhood) error {
	d := grid.NDims()
	meta := []int{len(nbh)}
	if err := mpi.Bcast(base, meta, 0); err != nil {
		return err
	}
	var detail error
	if meta[0] != len(nbh) {
		detail = fmt.Errorf("cart: neighborhood not Cartesian: rank %d has %d neighbors, root has %d", base.Rank(), len(nbh), meta[0])
	}
	flat := make([]int, meta[0]*d)
	if detail == nil {
		copy(flat, nbh.Flatten())
	}
	if err := mpi.Bcast(base, flat, 0); err != nil {
		return err
	}
	if detail == nil {
		mine := nbh.Flatten()
		for i := range flat {
			if flat[i] != mine[i] {
				detail = fmt.Errorf("cart: neighborhood not Cartesian: rank %d differs from root at flat offset %d (%d vs %d)", base.Rank(), i, mine[i], flat[i])
				break
			}
		}
	}
	// Agree collectively so every rank fails together when any rank's list
	// deviates (the root's own list trivially matches itself).
	agree := []int{1}
	if detail != nil {
		agree[0] = 0
	}
	if err := mpi.Allreduce(base, agree, agree, mpi.MinOp[int]); err != nil {
		return err
	}
	if agree[0] == 0 {
		if detail != nil {
			return detail
		}
		return fmt.Errorf("cart: neighborhood not Cartesian: another rank's offset list differs (rank %d's list matches the root)", base.Rank())
	}
	return nil
}

// Rank returns the calling process's rank.
func (c *Comm) Rank() int { return c.comm.Rank() }

// Size returns the number of processes.
func (c *Comm) Size() int { return c.comm.Size() }

// Grid returns the torus/mesh geometry.
func (c *Comm) Grid() *vec.Grid { return c.grid }

// Neighborhood returns the t-neighborhood (shared by all processes). The
// returned slice must not be modified.
func (c *Comm) Neighborhood() vec.Neighborhood { return c.nbh }

// Base returns the underlying point-to-point communicator.
func (c *Comm) Base() *mpi.Comm { return c.comm }

// Coords returns the calling process's Cartesian coordinates.
func (c *Comm) Coords() vec.Vec { return c.grid.CoordOf(c.comm.Rank()) }

// RelativeRank returns the rank of the process at the given relative
// coordinates from the calling process (Cart_relative_rank, Listing 2).
// ok is false when the displacement leaves a non-periodic mesh.
func (c *Comm) RelativeRank(relative vec.Vec) (rank int, ok bool, err error) {
	if len(relative) != c.grid.NDims() {
		return ProcNull, false, fmt.Errorf("cart: relative coordinate arity %d, grid has %d dimensions", len(relative), c.grid.NDims())
	}
	r, ok := c.grid.RankDisplace(c.comm.Rank(), relative)
	if !ok {
		return ProcNull, false, nil
	}
	return r, true, nil
}

// RelativeShift returns, for a relative offset, the rank this process
// receives from (inRank = R − relative) and sends to (outRank =
// R + relative) — Cart_relative_shift of Listing 2, the primitive of the
// trivial algorithm (Listing 4). Missing mesh neighbors are ProcNull.
func (c *Comm) RelativeShift(relative vec.Vec) (inRank, outRank int, err error) {
	if len(relative) != c.grid.NDims() {
		return ProcNull, ProcNull, fmt.Errorf("cart: relative coordinate arity %d, grid has %d dimensions", len(relative), c.grid.NDims())
	}
	outRank = ProcNull
	if r, ok := c.grid.RankDisplace(c.comm.Rank(), relative); ok {
		outRank = r
	}
	inRank = ProcNull
	if r, ok := c.grid.RankDisplace(c.comm.Rank(), relative.Neg()); ok {
		inRank = r
	}
	return inRank, outRank, nil
}

// RelativeCoord returns the coordinates of rank relative to the calling
// process (Cart_relative_coord, Listing 2). On a torus each component is
// reduced to the symmetric range (−p_i/2, p_i/2].
func (c *Comm) RelativeCoord(rank int) (vec.Vec, error) {
	if rank < 0 || rank >= c.comm.Size() {
		return nil, fmt.Errorf("cart: rank %d out of range [0,%d)", rank, c.comm.Size())
	}
	mine := c.grid.CoordOf(c.comm.Rank())
	theirs := c.grid.CoordOf(rank)
	rel := theirs.Sub(mine)
	for i := range rel {
		if c.grid.Periods[i] {
			p := c.grid.Dims[i]
			rel[i] = ((rel[i] % p) + p) % p
			if rel[i] > p/2 {
				rel[i] -= p
			}
		}
	}
	return rel, nil
}

// NeighborCount returns t, the number of neighbors
// (Cart_neighbor_count, Listing 2).
func (c *Comm) NeighborCount() int { return len(c.nbh) }

// NeighborGet returns the calling process's source and target neighbor
// ranks in neighborhood order, with their weights (nil when unweighted) —
// Cart_neighbor_get of Listing 2, in exactly the format required by
// MPI_Dist_graph_create_adjacent. Missing mesh neighbors are ProcNull.
// The returned slices are fresh copies.
func (c *Comm) NeighborGet() (sources, sourceWeights, targets, targetWeights []int) {
	sources = append([]int(nil), c.sources...)
	targets = append([]int(nil), c.targets...)
	if c.weights != nil {
		sourceWeights = append([]int(nil), c.weights...)
		targetWeights = append([]int(nil), c.weights...)
	}
	return sources, sourceWeights, targets, targetWeights
}

// Targets returns the target neighbor ranks (R + N[i]); the slice must not
// be modified.
func (c *Comm) Targets() []int { return c.targets }

// Sources returns the source neighbor ranks (R − N[i]); the slice must not
// be modified.
func (c *Comm) Sources() []int { return c.sources }

// DefaultAlgorithm returns the communicator's configured schedule family.
func (c *Comm) DefaultAlgorithm() Algorithm { return c.algo }

// IsPeriodic reports whether every dimension is periodic (a torus), the
// precondition of the message-combining schedules.
func (c *Comm) IsPeriodic() bool {
	for _, p := range c.grid.Periods {
		if !p {
			return false
		}
	}
	return true
}

// DistGraph creates a distributed-graph communicator carrying exactly this
// neighborhood, suitable for the baseline MPI neighborhood collectives the
// paper compares against. Missing mesh neighbors are omitted.
func (c *Comm) DistGraph() (*mpi.Comm, error) {
	var sources, targets []int
	for _, r := range c.sources {
		if r != ProcNull {
			sources = append(sources, r)
		}
	}
	for _, r := range c.targets {
		if r != ProcNull {
			targets = append(targets, r)
		}
	}
	return mpi.DistGraphCreateAdjacent(c.comm, sources, mpi.Unweighted, targets, mpi.Unweighted, false)
}
