package cart

import (
	"fmt"
	"math/rand"
	"testing"

	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// refReduce computes the expected reduction at rank directly from the
// definition: op over all i of the contribution of source R − N[i].
func refReduce(grid *vec.Grid, nbh vec.Neighborhood, rank, m int, contrib func(rank, e int) int, op func(a, b int) int) ([]int, bool) {
	out := make([]int, m)
	has := false
	for _, rel := range nbh {
		src, ok := grid.RankDisplace(rank, rel.Neg())
		if !ok {
			continue
		}
		for e := 0; e < m; e++ {
			if !has {
				out[e] = contrib(src, e)
			} else {
				out[e] = op(out[e], contrib(src, e))
			}
		}
		has = true
	}
	return out, has
}

func checkReduce(t *testing.T, dims []int, nbh vec.Neighborhood, m int, algo Algorithm) {
	t.Helper()
	contrib := func(rank, e int) int { return rank*1000 + e + 1 }
	op := func(a, b int) int { return a + b }
	runWorld(t, gridSize(dims), func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil, WithAlgorithm(algo))
		if err != nil {
			return err
		}
		plan, err := NeighborReduceInit(c, m, algo)
		if err != nil {
			return err
		}
		send := make([]int, m)
		for e := range send {
			send[e] = contrib(w.Rank(), e)
		}
		recv := make([]int, m)
		if err := RunReduce(plan, send, recv, op); err != nil {
			return err
		}
		want, _ := refReduce(c.Grid(), nbh, w.Rank(), m, contrib, op)
		for e := range want {
			if recv[e] != want[e] {
				return fmt.Errorf("rank %d algo %v elem %d: got %d want %d (recv=%v want=%v)",
					w.Rank(), algo, e, recv[e], want[e], recv, want)
			}
		}
		return nil
	})
}

func TestNeighborReduceMoore(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	for _, algo := range []Algorithm{Trivial, Combining, Auto} {
		checkReduce(t, []int{3, 3}, nbh, 3, algo)
	}
}

func TestNeighborReduce3D(t *testing.T) {
	nbh := mustStencil(t, 3, 3, -1)
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkReduce(t, []int{3, 3, 3}, nbh, 2, algo)
	}
}

func TestNeighborReduceAsymmetric(t *testing.T) {
	nbh := mustStencil(t, 2, 4, -1)
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkReduce(t, []int{3, 4}, nbh, 2, algo)
	}
}

func TestNeighborReduceFigure2Neighborhood(t *testing.T) {
	nbh := vec.Neighborhood{{-2, 1, 1}, {-1, 1, 1}, {1, 1, 1}, {2, 1, 1}}
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkReduce(t, []int{5, 3, 3}, nbh, 2, algo)
	}
}

func TestNeighborReduceDuplicatesCountTwice(t *testing.T) {
	// Duplicate offsets contribute once per occurrence (sum semantics).
	nbh := vec.Neighborhood{{1, 0}, {1, 0}, {0, 0}}
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkReduce(t, []int{3, 3}, nbh, 1, algo)
	}
}

func TestNeighborReduceRandomNeighborhoods(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	trials := 20
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		nbh := randomNeighborhood(rng)
		d := nbh.Dims()
		dims := make([]int, d)
		for i := range dims {
			dims[i] = rng.Intn(4) + 2
		}
		if gridSize(dims) > 150 {
			continue
		}
		m := rng.Intn(3) + 1
		for _, algo := range []Algorithm{Trivial, Combining} {
			checkReduce(t, dims, nbh, m, algo)
		}
	}
}

func TestNeighborReduceCombiningEconomics(t *testing.T) {
	// The dual of Proposition 3.3: combining reduction runs in C rounds
	// with tree-edge volume, against t rounds trivially.
	nbh := mustStencil(t, 3, 3, -1)
	runWorld(t, 27, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		comb, err := NeighborReduceInit(c, 1, Combining)
		if err != nil {
			return err
		}
		if comb.Rounds() != 6 || comb.Volume() != 26 {
			return fmt.Errorf("combining reduce: %d rounds volume %d, want 6/26", comb.Rounds(), comb.Volume())
		}
		triv, err := NeighborReduceInit(c, 1, Trivial)
		if err != nil {
			return err
		}
		if triv.Rounds() != 26 || triv.Volume() != 26 {
			return fmt.Errorf("trivial reduce: %d rounds volume %d, want 26/26", triv.Rounds(), triv.Volume())
		}
		if comb.Algorithm() != Combining || triv.Algorithm() != Trivial {
			return fmt.Errorf("algorithm accessors wrong")
		}
		return nil
	})
}

func TestNeighborReduceConvenienceAndValidation(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		send := []float64{float64(w.Rank())}
		recv := make([]float64, 1)
		if err := NeighborReduce(c, send, recv, func(a, b float64) float64 { return a + b }); err != nil {
			return err
		}
		// Sum of the 9 sources (torus: all ranks appear as sources once
		// each for the Moore neighborhood on a 3x3 torus).
		want := 0.0
		for r := 0; r < 9; r++ {
			want += float64(r)
		}
		if recv[0] != want {
			return fmt.Errorf("rank %d: sum %v, want %v", w.Rank(), recv[0], want)
		}
		if _, err := NeighborReduceInit(c, -1, Trivial); err == nil {
			return fmt.Errorf("negative m accepted")
		}
		p, _ := NeighborReduceInit(c, 4, Trivial)
		if err := RunReduce(p, make([]float64, 2), make([]float64, 4), func(a, b float64) float64 { return a }); err == nil {
			return fmt.Errorf("short send buffer accepted")
		}
		return nil
	})
}

func TestNeighborReduceMaxOp(t *testing.T) {
	// Non-sum operator over an asymmetric neighborhood.
	nbh := vec.Neighborhood{{0, 1}, {2, -1}, {1, 1}}
	contribMax := func(rank, e int) int { return (rank*7)%13 + e }
	opMax := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	dims := []int{3, 4}
	runWorld(t, 12, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil, WithAlgorithm(Combining))
		if err != nil {
			return err
		}
		send := []int{contribMax(w.Rank(), 0), contribMax(w.Rank(), 1)}
		recv := make([]int, 2)
		if err := NeighborReduce(c, send, recv, opMax); err != nil {
			return err
		}
		want, _ := refReduce(c.Grid(), nbh, w.Rank(), 2, contribMax, opMax)
		if recv[0] != want[0] || recv[1] != want[1] {
			return fmt.Errorf("rank %d: %v want %v", w.Rank(), recv, want)
		}
		return nil
	})
}

func TestNeighborReduceOnMesh(t *testing.T) {
	// Trivial reduction on a non-periodic mesh: boundary processes combine
	// only their existing sources; a process with no sources leaves recv
	// untouched.
	nbh := vec.Neighborhood{{1}} // source = rank-1... source of block (1) is r-1
	runWorld(t, 4, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{4}, []bool{false}, nbh, nil, WithAlgorithm(Trivial))
		if err != nil {
			return err
		}
		send := []int{w.Rank() + 100}
		recv := []int{-1}
		if err := NeighborReduce(c, send, recv, func(a, b int) int { return a + b }); err != nil {
			return err
		}
		if w.Rank() == 0 {
			if recv[0] != -1 {
				return fmt.Errorf("rank 0 (no source) recv = %d", recv[0])
			}
		} else if recv[0] != w.Rank()-1+100 {
			return fmt.Errorf("rank %d recv = %d", w.Rank(), recv[0])
		}
		return nil
	})
}

func TestNeighborReduceCombiningOnMesh(t *testing.T) {
	// The mesh-aware reversed-tree reduction (mesh_reduce.go): boundary
	// processes combine only existing sources; contributions without a
	// destination are dropped at the source.
	contrib := func(rank, e int) int { return rank*1000 + e + 1 }
	op := func(a, b int) int { return a + b }
	for _, tc := range []struct {
		dims    []int
		periods []bool
		nbh     vec.Neighborhood
	}{
		{[]int{5}, []bool{false}, mustStencil(t, 1, 3, -1)},
		{[]int{3, 4}, []bool{false, false}, mustStencil(t, 2, 3, -1)},
		{[]int{4, 4}, []bool{false, false}, mustStencil(t, 2, 4, -1)},
		{[]int{3, 4}, []bool{true, false}, mustStencil(t, 2, 3, -1)},
	} {
		tc := tc
		runWorld(t, gridSize(tc.dims), func(w *mpi.Comm) error {
			c, err := NeighborhoodCreate(w, tc.dims, tc.periods, tc.nbh, nil)
			if err != nil {
				return err
			}
			plan, err := NeighborReduceInit(c, 2, Combining)
			if err != nil {
				return err
			}
			send := []int{contrib(w.Rank(), 0), contrib(w.Rank(), 1)}
			recv := []int{-7, -7}
			if err := RunReduce(plan, send, recv, op); err != nil {
				return err
			}
			want, has := refReduce(c.Grid(), tc.nbh, w.Rank(), 2, contrib, op)
			if !has {
				want = []int{-7, -7} // untouched
			}
			for e := range want {
				if recv[e] != want[e] {
					return fmt.Errorf("rank %d dims %v elem %d: got %d want %d",
						w.Rank(), tc.dims, e, recv[e], want[e])
				}
			}
			return nil
		})
	}
}

func TestNeighborReduceMeshRandom(t *testing.T) {
	contrib := func(rank, e int) int { return rank*100 + e }
	op := func(a, b int) int { return a + b }
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 12; trial++ {
		nbh := randomNeighborhood(rng)
		d := nbh.Dims()
		dims := make([]int, d)
		periods := make([]bool, d)
		for i := range dims {
			dims[i] = rng.Intn(4) + 2
			periods[i] = rng.Intn(2) == 0
		}
		if gridSize(dims) > 120 {
			continue
		}
		nbhc := nbh
		dimsC, periodsC := dims, periods
		runWorld(t, gridSize(dims), func(w *mpi.Comm) error {
			c, err := NeighborhoodCreate(w, dimsC, periodsC, nbhc, nil)
			if err != nil {
				return err
			}
			plan, err := NeighborReduceInit(c, 1, Combining)
			if err != nil {
				return err
			}
			send := []int{contrib(w.Rank(), 0)}
			recv := []int{-7}
			if err := RunReduce(plan, send, recv, op); err != nil {
				return err
			}
			want, has := refReduce(c.Grid(), nbhc, w.Rank(), 1, contrib, op)
			if !has {
				want = []int{-7}
			}
			if recv[0] != want[0] {
				return fmt.Errorf("trial rank %d dims %v: got %d want %d (nbh=%v)",
					w.Rank(), dimsC, recv[0], want[0], nbhc)
			}
			return nil
		})
	}
}
