package cart

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// checkMeshAlltoall runs the mesh-aware combining alltoall and compares
// against the reference (which already honors mesh boundaries by skipping
// missing sources).
func checkMeshAlltoall(t *testing.T, dims []int, periods []bool, nbh vec.Neighborhood, m int) {
	t.Helper()
	runWorld(t, gridSize(dims), func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, periods, nbh, nil, WithAlgorithm(Trivial))
		if err != nil {
			return err
		}
		tn := len(nbh)
		send := make([]int, tn*m)
		for i := 0; i < tn; i++ {
			for e := 0; e < m; e++ {
				send[i*m+e] = encode(w.Rank(), i, e)
			}
		}
		plan, err := MeshAlltoallInit(c, m)
		if err != nil {
			return err
		}
		recv := make([]int, tn*m)
		for j := range recv {
			recv[j] = -1
		}
		if err := Run(plan, send, recv); err != nil {
			return err
		}
		want := refAlltoall(c.Grid(), nbh, w.Rank(), m)
		// Blocks with no source stay untouched (-1) in the combining
		// version; normalize the reference accordingly.
		for i, rel := range nbh {
			if _, ok := c.Grid().RankDisplace(w.Rank(), rel.Neg()); !ok {
				for e := 0; e < m; e++ {
					want[i*m+e] = -1
				}
			}
		}
		if !reflect.DeepEqual(recv, want) {
			return fmt.Errorf("rank %d (%v): recv=%v want=%v", w.Rank(), dims, recv, want)
		}
		return nil
	})
}

func TestMeshCombiningAlltoall1D(t *testing.T) {
	nbh := mustStencil(t, 1, 3, -1)
	checkMeshAlltoall(t, []int{5}, []bool{false}, nbh, 2)
}

func TestMeshCombiningAlltoall2D(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	checkMeshAlltoall(t, []int{3, 4}, []bool{false, false}, nbh, 2)
}

func TestMeshCombiningAlltoallMixedPeriodicity(t *testing.T) {
	// One periodic, one mesh dimension.
	nbh := mustStencil(t, 2, 3, -1)
	checkMeshAlltoall(t, []int{3, 4}, []bool{true, false}, nbh, 1)
}

func TestMeshCombiningAlltoallAsymmetric(t *testing.T) {
	// Offsets up to +2 on a small mesh: many paths truncated.
	nbh := mustStencil(t, 2, 4, -1)
	checkMeshAlltoall(t, []int{4, 4}, []bool{false, false}, nbh, 2)
}

func TestMeshCombiningEqualsTorusCombiningOnTorus(t *testing.T) {
	// On a fully periodic grid the mesh plan must behave exactly like the
	// torus combining plan.
	nbh := mustStencil(t, 2, 3, -1)
	checkMeshAlltoall(t, []int{3, 3}, nil, nbh, 2)
	// And its round/volume accounting matches the torus schedule.
	grid, _ := vec.NewGrid([]int{5, 5}, nil)
	s := MeshAlltoallSchedule(grid, 12, nbh)
	torus := AlltoallSchedule(nbh)
	if s.Rounds != torus.Rounds || s.Volume != torus.Volume {
		t.Errorf("torus-degenerate mesh schedule: %d/%d vs %d/%d", s.Rounds, s.Volume, torus.Rounds, torus.Volume)
	}
}

func TestMeshScheduleBoundaryVolumesShrink(t *testing.T) {
	// A corner process of a mesh relays fewer blocks than an interior one.
	grid, _ := vec.NewGrid([]int{5, 5}, []bool{false, false})
	nbh := mustStencil(t, 2, 3, -1)
	corner := MeshAlltoallSchedule(grid, 0, nbh) // coordinate (0,0)
	interiorRank, _ := grid.RankOf(vec.Vec{2, 2})
	interior := MeshAlltoallSchedule(grid, interiorRank, nbh)
	if corner.Volume >= interior.Volume {
		t.Errorf("corner volume %d not below interior %d", corner.Volume, interior.Volume)
	}
	if interior.Volume != AlltoallSchedule(nbh).Volume {
		t.Errorf("interior volume %d differs from torus %d", interior.Volume, AlltoallSchedule(nbh).Volume)
	}
}

func TestMeshCombiningRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	trials := 15
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		nbh := randomNeighborhood(rng)
		d := nbh.Dims()
		dims := make([]int, d)
		periods := make([]bool, d)
		for i := range dims {
			dims[i] = rng.Intn(4) + 2
			periods[i] = rng.Intn(2) == 0
		}
		if gridSize(dims) > 150 {
			continue
		}
		checkMeshAlltoall(t, dims, periods, nbh, rng.Intn(3)+1)
	}
}

// checkMeshAllgather mirrors checkMeshAlltoall for the allgather family.
func checkMeshAllgather(t *testing.T, dims []int, periods []bool, nbh vec.Neighborhood, m int) {
	t.Helper()
	runWorld(t, gridSize(dims), func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, periods, nbh, nil, WithAlgorithm(Trivial))
		if err != nil {
			return err
		}
		send := make([]int, m)
		for e := 0; e < m; e++ {
			send[e] = encode(w.Rank(), 0, e)
		}
		plan, err := MeshAllgatherInit(c, m)
		if err != nil {
			return err
		}
		recv := make([]int, len(nbh)*m)
		for j := range recv {
			recv[j] = -1
		}
		if err := Run(plan, send, recv); err != nil {
			return err
		}
		want := refAllgather(c.Grid(), nbh, w.Rank(), m)
		for i, rel := range nbh {
			if _, ok := c.Grid().RankDisplace(w.Rank(), rel.Neg()); !ok {
				for e := 0; e < m; e++ {
					want[i*m+e] = -1
				}
			}
		}
		if !reflect.DeepEqual(recv, want) {
			return fmt.Errorf("rank %d (%v): recv=%v want=%v", w.Rank(), dims, recv, want)
		}
		return nil
	})
}

func TestMeshCombiningAllgather1D(t *testing.T) {
	nbh := mustStencil(t, 1, 3, -1)
	checkMeshAllgather(t, []int{5}, []bool{false}, nbh, 2)
}

func TestMeshCombiningAllgather2D(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	checkMeshAllgather(t, []int{3, 4}, []bool{false, false}, nbh, 2)
}

func TestMeshCombiningAllgatherAsymmetric(t *testing.T) {
	nbh := mustStencil(t, 2, 4, -1)
	checkMeshAllgather(t, []int{4, 4}, []bool{false, false}, nbh, 1)
}

func TestMeshCombiningAllgatherMixedPeriodicity(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	checkMeshAllgather(t, []int{3, 4}, []bool{true, false}, nbh, 2)
}

func TestMeshAllgatherTorusDegenerate(t *testing.T) {
	// On a torus the mesh plan must match the torus combining accounting.
	nbh := mustStencil(t, 2, 3, -1)
	checkMeshAllgather(t, []int{3, 3}, nil, nbh, 2)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		mesh, err := MeshAllgatherInit(c, 1)
		if err != nil {
			return err
		}
		torus, err := AllgatherInit(c, 1, Combining)
		if err != nil {
			return err
		}
		if mesh.Rounds() != torus.Rounds() || mesh.SendElements() != torus.SendElements() {
			return fmt.Errorf("mesh %d/%d vs torus %d/%d", mesh.Rounds(), mesh.SendElements(), torus.Rounds(), torus.SendElements())
		}
		return nil
	})
}

func TestMeshCombiningAllgatherRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	trials := 15
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		nbh := randomNeighborhood(rng)
		d := nbh.Dims()
		dims := make([]int, d)
		periods := make([]bool, d)
		for i := range dims {
			dims[i] = rng.Intn(4) + 2
			periods[i] = rng.Intn(2) == 0
		}
		if gridSize(dims) > 150 {
			continue
		}
		checkMeshAllgather(t, dims, periods, nbh, rng.Intn(3)+1)
	}
}

func TestMeshAllgatherBoundaryVolumeShrinks(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 25, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{5, 5}, []bool{false, false}, nbh, nil, WithAlgorithm(Trivial))
		if err != nil {
			return err
		}
		p, err := MeshAllgatherInit(c, 1)
		if err != nil {
			return err
		}
		coords := c.Coords()
		interior := coords[0] > 0 && coords[0] < 4 && coords[1] > 0 && coords[1] < 4
		if interior {
			if p.SendElements() != 8 {
				return fmt.Errorf("interior allgather volume %d, want 8", p.SendElements())
			}
		} else if p.SendElements() >= 8 {
			return fmt.Errorf("boundary allgather volume %d, want < 8", p.SendElements())
		}
		return nil
	})
}
