package cart

import (
	"fmt"
	"sync/atomic"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/trace"
)

// The pipelined executor: completion-driven schedule execution over the
// block-level dependency DAG of dag.go, replacing the per-phase Waitall
// barrier. Rounds are not executed phase by phase; instead
//
//   - a round's send posts the moment its RAW producers have retired —
//     sends reading only the user send buffer post immediately, before any
//     message has arrived;
//   - receives are pre-posted in phase-major order up to a bounded window,
//     so the runtime's match-time-consume single-copy path keeps hitting
//     (an unexpected early message simply detaches to the wire pool and
//     matches later — the window bounds memory, not correctness);
//   - a completion-channel WaitSet (mpi.Waitsome) retires receives as they
//     land: each retirement decrements its dependents' in-degrees, posting
//     newly-ready sends and releasing gated scatters, with no barrier and
//     no polling.
//
// Progress argument: receives are posted in phase-major order, so the
// earliest unretired receive is always posted (window >= 1). Its scatter
// gates (WAR/WAW) point only at same-or-earlier-phase send posts and
// strictly-earlier scatters, which unwind inductively to phase-0 sends —
// all barrier-free. Any stall is therefore a wait for a message that some
// peer has posted or will post, which is exactly the barriered executor's
// dependency structure; since the barriered schedule is deadlock-free and
// the DAG is a subset of its ordering constraints, the pipelined execution
// terminates whenever the barriered one does.
//
// Failures keep their attribution: every error is wrapped by phaseError
// with the round's phase, index, and peer before it propagates, and the
// remaining posted receives are cancelled (or drained when a match is
// already in flight) exactly as the barriered executor does.

// pipeState is the pipelined executor's plan-owned scratch: allocated once
// on first use, reset in place on every execution, so repeated runs of one
// plan stay allocation-free (alloc_regression_test.go).
type pipeState struct {
	sendLeft   []int32
	scatLeft   []int32
	deferred   []bool
	arrived    []bool
	retired    []bool
	sendPosted []bool
	recvPosted []bool
	// leaf marks rounds whose retirement unblocks nothing (no RAW or WAW
	// successors). Their completions carry no scheduling information, so
	// they skip the WaitSet — no per-message wakeup — and are waited in
	// bulk after the live rounds have driven the DAG dry, like the
	// barriered executor's Waitall tail.
	leaf  []bool
	reqs  []*mpi.Request
	stack []int32 // ready-to-post send work stack
	// postNs stamps each round's receive-post wall time when a metrics
	// registry is attached, feeding the cart.retire.ns latency histogram.
	postNs []int64
	ws     *mpi.WaitSet
	nRecvs int
	nSends int
	nLive  int // receives with successors: the WaitSet-driven set
}

// newPipeState allocates one execution's worth of scratch for the plan.
// withWS attaches a plan-owned WaitSet for the synchronous executor; the
// progress engine's executions pass false and attach their worker's
// multiplexed set per execution instead (engine.go).
func newPipeState(p *Plan, withWS bool) *pipeState {
	n := len(p.flat)
	st := &pipeState{
		sendLeft:   make([]int32, n),
		scatLeft:   make([]int32, n),
		deferred:   make([]bool, n),
		arrived:    make([]bool, n),
		retired:    make([]bool, n),
		sendPosted: make([]bool, n),
		recvPosted: make([]bool, n),
		leaf:       make([]bool, n),
		reqs:       make([]*mpi.Request, n),
		postNs:     make([]int64, n),
		stack:      make([]int32, 0, n),
	}
	for i, r := range p.flat {
		if r.recvFrom != ProcNull {
			st.nRecvs++
			st.leaf[i] = len(p.deps[i].rawSucc) == 0 && len(p.deps[i].wawSucc) == 0
			if !st.leaf[i] {
				st.nLive++
			}
		}
		if r.sendTo != ProcNull {
			st.nSends++
		}
	}
	if withWS {
		st.ws = mpi.NewWaitSet(p.comm.comm, st.nLive)
	}
	return st
}

// pipeScratch returns the plan's executor scratch, allocating it on first
// use.
func (p *Plan) pipeScratch() *pipeState {
	if p.pipe == nil {
		p.pipe = newPipeState(p, true)
	}
	return p.pipe
}

// reset rearms the scratch for one execution of p.
func (st *pipeState) reset(p *Plan) {
	st.stack = st.stack[:0]
	for i := 0; i < len(p.flat); i++ {
		st.sendLeft[i] = p.deps[i].sendDeps
		st.scatLeft[i] = p.deps[i].scatDeps
		st.deferred[i] = false
		st.arrived[i] = false
		st.retired[i] = false
		st.sendPosted[i] = false
		st.recvPosted[i] = false
		st.reqs[i] = nil
	}
}

// pipeExec is one execution's live state over a pipeState. The
// synchronous executor drives it to completion on the caller's goroutine
// over the plan-owned scratch; the progress engine (engine.go) embeds it
// in an asyncExec and drives the same state machine from completion
// events, with a per-execution tag offset (concurrent futures of one
// communicator must not match each other's messages), the worker's shared
// WaitSet, and an owner base that routes completions back to this
// execution.
type pipeExec[T any] struct {
	p         *Plan
	st        *pipeState
	bufs      [][]T
	comm      *mpi.Comm
	ws        *mpi.WaitSet        // completion set receives attach to (synchronous runs)
	sink      *mpi.CompletionSink // engine completion sink (async runs; takes precedence)
	tagOff    int                 // added to every round tag (0 for synchronous runs)
	ownerBase int                 // completion token base (0 for synchronous runs)
	// leafGate, when non-nil (engine executions with leaf rounds),
	// coalesces every leaf receive's completion into one sentinel token:
	// leaves stay out of the window and the completion set — no
	// per-message wakeup, exactly like the synchronous bulk tail — and
	// the gate posts the execution's leaf sentinel once the last leaf
	// (and the attach-time bias) has been accounted.
	leafGate *atomic.Int32
	// quiet suppresses round-log events: the plan's RoundLog is
	// single-goroutine, and an async execution posts from the committing
	// caller concurrently with the engine driver (AsyncLog is the async
	// trace story).
	quiet    bool
	posted   int // posted, unretired tracked receives (window occupancy)
	nextPost int // next flat index to consider for receive posting
	remRecv  int
	remLive  int // unretired tracked (WaitSet-driven) receives
	remSend  int
}

// runPipelined executes the plan's rounds in dependency order. bufs is the
// (send, recv, temp) buffer array; local copies are the caller's job (they
// run after every round has retired, as in the barriered executor).
func runPipelined[T any](p *Plan, bufs [][]T) error {
	st := p.pipeScratch()
	n := len(p.flat)
	st.ws.Reset()
	st.reset(p)
	e := &pipeExec[T]{p: p, st: st, bufs: bufs, comm: p.comm.comm, ws: st.ws, remRecv: st.nRecvs, remLive: st.nLive, remSend: st.nSends}

	// Receives first (window depth), then every barrier-free send.
	if err := e.fillWindow(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if p.flat[i].sendTo != ProcNull && st.sendLeft[i] == 0 {
			st.stack = append(st.stack, int32(i))
		}
	}
	if err := e.drainSends(); err != nil {
		return err
	}
	for e.remLive > 0 {
		owners, err := st.ws.Waitsome()
		if err != nil {
			return e.abortDrain(e.attributeWaitErr(err))
		}
		if owners == nil {
			return e.abortDrain(fmt.Errorf("cart: internal: pipelined executor stalled with %d live receive(s) unretired", e.remLive))
		}
		for _, i := range owners {
			e.st.arrived[i] = true
			if err := e.tryRetire(int32(i)); err != nil {
				return e.abortDrain(err)
			}
		}
		if err := e.fillWindow(); err != nil {
			return err
		}
		if err := e.drainSends(); err != nil {
			return err
		}
	}
	if err := e.drainSends(); err != nil {
		return err
	}
	if e.remSend > 0 {
		return fmt.Errorf("cart: internal: pipelined executor finished live receives with %d send(s) unposted", e.remSend)
	}
	// Bulk tail: every live round has retired, so all scatter gates of the
	// remaining leaf receives have fired; wait them in flat (phase-major)
	// order, which preserves WAW order among deferred leaf scatters.
	for i := range p.flat {
		if !st.recvPosted[i] || st.retired[i] {
			continue
		}
		if st.scatLeft[i] > 0 {
			return e.abortDrain(fmt.Errorf("cart: internal: leaf round %d still scatter-gated after DAG drain", i))
		}
		if _, err := st.reqs[i].Wait(); err != nil {
			return e.abortDrain(p.phaseError(p.deps[i].phase, p.deps[i].idx, p.flat[i].recvWhat, err))
		}
		st.retired[i] = true
		e.remRecv--
		e.logRound(p.deps[i].phase, p.deps[i].idx, p.flat[i].recvFrom, trace.RoundRecvDone)
		p.countRetire()
		if m := p.cmet; m != nil {
			m.retireNs.Observe(time.Now().UnixNano() - st.postNs[i])
		}
	}
	if e.remRecv > 0 {
		return fmt.Errorf("cart: internal: pipelined executor finished with %d receive(s) unposted", e.remRecv)
	}
	return nil
}

// fillWindow pre-posts receives in phase-major order until the window
// holds p.window live receives or none remain. Leaf receives do not count
// against the window and are not added to the WaitSet: a posted receive
// pins no payload memory (an early message detaches to the pooled wire
// either way), so posting them eagerly only widens the match-time-consume
// fast path, while the window bounds the completion-tracked frontier the
// executor must react to. The deferred-scatter decision is frozen at post
// time: a round whose scatter gates are already clear may scatter at match
// time (single-copy) — its gates only ever decrease, so no conflicting
// send or earlier scatter can appear later. A round still gated defers its
// scatter to retirement (Wait), in this goroutine, after the gates clear.
func (e *pipeExec[T]) fillWindow() error {
	p, st := e.p, e.st
	for e.posted < p.window && e.nextPost < len(p.flat) {
		i := e.nextPost
		r := p.flat[i]
		if r.recvFrom == ProcNull {
			e.nextPost++
			continue
		}
		st.deferred[i] = st.scatLeft[i] > 0
		req, err := mpi.IrecvComposite(e.comm, e.bufs, &r.recv, r.recvFrom, r.tag+e.tagOff, st.deferred[i])
		if err != nil {
			return e.abortDrain(p.phaseError(p.deps[i].phase, p.deps[i].idx, r.recvWhat, err))
		}
		st.reqs[i] = req
		st.recvPosted[i] = true
		e.nextPost++
		e.logRound(p.deps[i].phase, p.deps[i].idx, r.recvFrom, trace.RoundRecvPost)
		p.countRecvPost()
		if m := p.cmet; m != nil {
			st.postNs[i] = time.Now().UnixNano()
		}
		if !st.leaf[i] {
			e.posted++
			if m := p.cmet; m != nil {
				m.prepostHWM.SetMax(int64(e.posted))
			}
			if e.sink != nil {
				e.sink.Add(req, e.ownerBase+i)
			} else {
				e.ws.Add(req, e.ownerBase+i)
			}
		} else if e.leafGate != nil {
			e.sink.AddGated(req, e.ownerBase|ownerMask, e.leafGate)
		}
	}
	return nil
}

// drainSends posts every send on the ready stack; each post releases its
// WAR-gated scatters, which can retire rounds and push further sends.
func (e *pipeExec[T]) drainSends() error {
	st := e.st
	for len(st.stack) > 0 {
		i := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		if err := e.postSend(i); err != nil {
			return e.abortDrain(err)
		}
	}
	return nil
}

// postSend posts round i's send. Sends are buffered (they complete at
// post), so the immediate Wait cannot block — it only surfaces a failed
// peer or revoked context as the typed error.
func (e *pipeExec[T]) postSend(i int32) error {
	p, st := e.p, e.st
	r := p.flat[i]
	req, err := mpi.IsendComposite(e.comm, e.bufs, &r.send, r.sendTo, r.tag+e.tagOff)
	if err == nil {
		_, err = req.Wait()
	}
	if err != nil {
		return p.phaseError(p.deps[i].phase, p.deps[i].idx, r.sendWhat, err)
	}
	st.sendPosted[i] = true
	e.remSend--
	e.logRound(p.deps[i].phase, p.deps[i].idx, r.sendTo, trace.RoundSendPost)
	p.countSend(r)
	for _, s := range p.deps[i].warSucc {
		st.scatLeft[s]--
		if err := e.tryRetire(s); err != nil {
			return err
		}
	}
	return nil
}

// tryRetire retires round i once its message has arrived and its scatter
// gates are clear: the Wait performs the deferred scatter (or just reports
// the match-time scatter's result), then the retirement cascades — RAW
// successors lose a producer (sends may become ready), WAW successors lose
// a scatter gate (later receives on the same extent may retire).
func (e *pipeExec[T]) tryRetire(i int32) error {
	p, st := e.p, e.st
	if !st.recvPosted[i] || st.retired[i] {
		return nil
	}
	if !st.arrived[i] {
		// Not retirable yet, but if the scatter gates just cleared and no
		// message has matched, hand the scatter back to the matcher: the
		// single-copy fast path runs in the sender's goroutine, in parallel
		// with this executor, instead of serially at Wait.
		if st.deferred[i] && st.scatLeft[i] == 0 && st.reqs[i].UndeferConsume() {
			st.deferred[i] = false
		}
		return nil
	}
	if st.scatLeft[i] > 0 {
		return nil
	}
	if _, err := st.reqs[i].Wait(); err != nil {
		return p.phaseError(p.deps[i].phase, p.deps[i].idx, p.flat[i].recvWhat, err)
	}
	st.retired[i] = true
	e.posted--
	e.remRecv--
	e.remLive--
	e.logRound(p.deps[i].phase, p.deps[i].idx, p.flat[i].recvFrom, trace.RoundRecvDone)
	p.countRetire()
	if m := p.cmet; m != nil {
		m.retireNs.Observe(time.Now().UnixNano() - st.postNs[i])
	}
	for _, s := range p.deps[i].rawSucc {
		st.sendLeft[s]--
		if st.sendLeft[s] == 0 {
			st.stack = append(st.stack, s)
		}
	}
	for _, s := range p.deps[i].wawSucc {
		st.scatLeft[s]--
		if err := e.tryRetire(s); err != nil {
			return err
		}
	}
	return nil
}

// runPipelinedModel executes the plan's rounds in dependency order under a
// virtual-time cost model, where the per-rank clock is charged at send
// posts and receive waits: sends post the moment their RAW producers have
// retired — exactly as in runPipelined — so the clock prices the DAG's
// depth (barrier-free rounds pay the wire latency α once, not once per
// phase), but receives are waited in flat (phase-major) order instead of
// real completion order, so the accounting is deterministic and
// independent of goroutine scheduling.
//
// Flat-order waiting needs no readiness check: the earliest unretired
// receive's WAW gates are earlier receives (already retired) and its WAR
// gates are same-or-earlier-phase sends, whose RAW producers are receives
// of strictly earlier phases (already retired) — so its scatter gates are
// always clear, the invariant the internal-error guard below asserts.
func runPipelinedModel[T any](p *Plan, bufs [][]T) error {
	st := p.pipeScratch()
	n := len(p.flat)
	st.reset(p)
	e := &pipeExec[T]{p: p, st: st, bufs: bufs, comm: p.comm.comm, ws: st.ws, remRecv: st.nRecvs, remLive: st.nRecvs, remSend: st.nSends}

	// Post every receive upfront (posting is free on the virtual clock and
	// keeps the match-time-consume path hitting), then every barrier-free
	// send.
	for i := 0; i < n; i++ {
		r := p.flat[i]
		if r.recvFrom == ProcNull {
			continue
		}
		st.deferred[i] = st.scatLeft[i] > 0
		req, err := mpi.IrecvComposite(e.comm, e.bufs, &r.recv, r.recvFrom, r.tag, st.deferred[i])
		if err != nil {
			return e.abortDrain(p.phaseError(p.deps[i].phase, p.deps[i].idx, r.recvWhat, err))
		}
		st.reqs[i] = req
		st.recvPosted[i] = true
		e.logRound(p.deps[i].phase, p.deps[i].idx, r.recvFrom, trace.RoundRecvPost)
		p.countRecvPost()
		if m := p.cmet; m != nil {
			st.postNs[i] = time.Now().UnixNano()
		}
	}
	for i := 0; i < n; i++ {
		if p.flat[i].sendTo != ProcNull && st.sendLeft[i] == 0 {
			st.stack = append(st.stack, int32(i))
		}
	}
	if err := e.drainSendsOrdered(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if !st.recvPosted[i] || st.retired[i] {
			continue
		}
		if st.scatLeft[i] > 0 {
			return e.abortDrain(fmt.Errorf("cart: internal: round %d scatter-gated at its flat-order wait", i))
		}
		st.arrived[i] = true
		if err := e.tryRetire(int32(i)); err != nil {
			return e.abortDrain(err)
		}
		if err := e.drainSendsOrdered(); err != nil {
			return err
		}
	}
	if e.remSend > 0 {
		return fmt.Errorf("cart: internal: pipelined executor finished receives with %d send(s) unposted", e.remSend)
	}
	return nil
}

// drainSendsOrdered posts every send on the ready stack in ascending flat
// (phase-major) order — the order that gets earlier-phase messages, which
// sit on the recipients' critical paths, onto the wire first. The model
// executor uses it so the virtual clock prices a sensible posting order;
// repeated min-extraction keeps the scratch stack's backing array (the
// ready set is a handful of rounds, so quadratic extraction is noise).
func (e *pipeExec[T]) drainSendsOrdered() error {
	st := e.st
	for len(st.stack) > 0 {
		mi := 0
		for j := range st.stack {
			if st.stack[j] < st.stack[mi] {
				mi = j
			}
		}
		i := st.stack[mi]
		st.stack[mi] = st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		if err := e.postSend(i); err != nil {
			return e.abortDrain(err)
		}
	}
	return nil
}

// attributeWaitErr pins a round attribution on a WaitSet-level error
// (abort or suspected deadlock), which is not tied to a specific receive:
// the earliest posted unretired round is the one the executor was actually
// waiting on.
func (e *pipeExec[T]) attributeWaitErr(err error) error {
	p, st := e.p, e.st
	for i := range p.flat {
		if st.recvPosted[i] && !st.retired[i] {
			return p.phaseError(p.deps[i].phase, p.deps[i].idx, p.flat[i].recvWhat, err)
		}
	}
	return fmt.Errorf("cart: %s(%s): %w", p.op, p.algo, err)
}

// abortDrain abandons the execution after attributed: posted unretired
// receives are cancelled — their messages may never come — and receives
// already holding a match (or poison) are drained so no pooled wire or
// in-flight scatter is left dangling. Mirrors the barriered executor's
// failure path.
func (e *pipeExec[T]) abortDrain(attributed error) error {
	st := e.st
	for i := range e.p.flat {
		if !st.recvPosted[i] || st.retired[i] {
			continue
		}
		if st.reqs[i].Cancel() {
			continue
		}
		_, _ = st.reqs[i].Wait()
	}
	return attributed
}

// logRound emits one executor event when a round log is attached.
func (p *Plan) logRound(phase, round, peer int, kind trace.RoundKind) {
	if p.rlog != nil {
		p.rlog.Add(phase, round, peer, kind)
	}
}

// logRound forwards to the plan's round log unless the execution is quiet
// (async executions: the RoundLog is single-goroutine).
func (e *pipeExec[T]) logRound(phase, round, peer int, kind trace.RoundKind) {
	if !e.quiet {
		e.p.logRound(phase, round, peer, kind)
	}
}

// SetRoundLog attaches a wall-clock per-round event log to the plan's
// executions (nil detaches). The pipelined executor records send posts,
// receive posts, and receive retirements; the barriered executor records
// posts. Single-goroutine, like the plan itself.
func (p *Plan) SetRoundLog(l *trace.RoundLog) {
	p.rlog = l
	if l != nil {
		// At most three events per round (send post, receive post, receive
		// done); reserving them up front keeps logged re-executions
		// allocation-free (Run resets the log in place each epoch).
		l.Reserve(3 * len(p.flat))
	}
}
