package cart

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/vec"
)

func TestBlockedPermutationStructure(t *testing.T) {
	grid, _ := vec.NewGrid([]int{4, 4}, nil)
	perm, ok := BlockedPermutation(grid, 4)
	if !ok {
		t.Fatal("4x4 grid with 4 cores/node not blockable")
	}
	// Must be a permutation of 0..15.
	seen := make([]bool, 16)
	for _, p := range perm {
		if p < 0 || p >= 16 || seen[p] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[p] = true
	}
	// Every 2x2 logical block must land on one node (4 consecutive
	// physical ranks).
	for br := 0; br < 2; br++ {
		for bc := 0; bc < 2; bc++ {
			node := -1
			for dr := 0; dr < 2; dr++ {
				for dc := 0; dc < 2; dc++ {
					r, _ := grid.RankOf(vec.Vec{2*br + dr, 2*bc + dc})
					n := perm[r] / 4
					if node == -1 {
						node = n
					} else if n != node {
						t.Fatalf("block (%d,%d) spans nodes: %v", br, bc, perm)
					}
				}
			}
		}
	}
}

func TestBlockedPermutationFailures(t *testing.T) {
	grid, _ := vec.NewGrid([]int{3, 3}, nil)
	if _, ok := BlockedPermutation(grid, 2); ok {
		t.Error("9 ranks with 2 cores/node accepted")
	}
	grid2, _ := vec.NewGrid([]int{5, 2}, nil)
	// 10 % 4 != 0.
	if _, ok := BlockedPermutation(grid2, 4); ok {
		t.Error("non-divisible node size accepted")
	}
	if _, ok := BlockedPermutation(grid, 1); ok {
		t.Error("coresPerNode=1 should keep identity (not blockable)")
	}
	// 3x3 with 3 cores/node: blocks 3x1 — fine.
	if _, ok := BlockedPermutation(grid, 3); !ok {
		t.Error("3x3 grid with 3 cores/node not blockable")
	}
}

func TestIntraNodeFractionImproves(t *testing.T) {
	grid, _ := vec.NewGrid([]int{4, 4, 4}, nil)
	nbh, _ := vec.Moore(3, 1)
	perm, ok := BlockedPermutation(grid, 8) // 2x2x2 blocks
	if !ok {
		t.Fatal("not blockable")
	}
	ident := IntraNodeFraction(grid, nbh, 8, nil)
	blocked := IntraNodeFraction(grid, nbh, 8, perm)
	if blocked <= ident {
		t.Fatalf("blocked mapping %f not better than identity %f", blocked, ident)
	}
	// 2x2x2 blocks on a 26-neighbor stencil: each process has 7 of its 26
	// neighbors in its own block.
	if want := 7.0 / 26.0; blocked < want-1e-9 || blocked > want+1e-9 {
		t.Errorf("blocked fraction %f, want %f", blocked, want)
	}
}

func TestReorderedCommStillCorrect(t *testing.T) {
	// The collective semantics must be unchanged by reordering: the
	// result is defined relative to the (new) coordinates.
	nbh := mustStencil(t, 2, 3, -1)
	dims := []int{4, 4}
	model := netmodel.HydraHierarchical(4)
	err := mpi.Run(mpi.Config{Procs: 16, Model: model, Seed: 1, Timeout: 30 * time.Second}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil, WithAlgorithm(Combining), WithReorder())
		if err != nil {
			return err
		}
		tn := len(nbh)
		send := make([]int, tn)
		for i := range send {
			send[i] = encode(c.Rank(), i, 0) // note: NEW rank identifies data
		}
		recv := make([]int, tn)
		if err := Alltoall(c, send, recv); err != nil {
			return err
		}
		want := refAlltoall(c.Grid(), nbh, c.Rank(), 1)
		if !reflect.DeepEqual(recv, want) {
			return fmt.Errorf("new rank %d: recv %v want %v", c.Rank(), recv, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReorderReducesVirtualTime(t *testing.T) {
	// Under a hierarchical model, the reordered communicator's alltoall
	// must be measurably faster in virtual time. With 4 cores per node the
	// identity mapping puts each node on a 1×4 row strip (every vertical
	// Moore neighbor inter-node, worst rank 1/8 intra), while the blocked
	// mapping forms 2×2 tiles (uniform 3/8 intra) — a clear critical-path
	// win. (With, e.g., 16 cores per node the identity's 2×8 strips are
	// already uniform at 5/8 and square tiles would *hurt* the max-over-
	// ranks despite a better average — collectives run at the pace of the
	// worst rank.)
	// Note: with the round-blocking trivial algorithm the synchronization
	// chains couple every rank to the globally slowest edge, so remapping
	// barely moves the needle there; the gain shows in per-rank serialized
	// costs — injection bandwidth of the nonblocking direct exchange with
	// sizable blocks.
	nbh := mustStencil(t, 2, 3, -1)
	dims := []int{8, 8}
	const procs = 64
	const m = 4000 // 16 kB blocks: injection-bandwidth bound
	measure := func(reorder bool) float64 {
		model := netmodel.Hydra()
		model.Hierarchy = &netmodel.Hierarchy{CoresPerNode: 4, IntraAlpha: 0.05e-6, IntraBeta: 8e-13}
		var vt float64
		err := mpi.Run(mpi.Config{Procs: procs, Model: model, Seed: 1, Timeout: time.Minute}, func(w *mpi.Comm) error {
			var opts []Option
			if reorder {
				opts = append(opts, WithReorder())
			}
			c, err := NeighborhoodCreate(w, dims, nil, nbh, nil, opts...)
			if err != nil {
				return err
			}
			g, err := c.DistGraph()
			if err != nil {
				return err
			}
			send := make([]int32, len(nbh)*m) // the graph keeps the self loop
			recv := make([]int32, len(nbh)*m)
			if err := mpi.Barrier(c.Base()); err != nil {
				return err
			}
			t0 := w.VTime()
			for i := 0; i < 3; i++ {
				if err := mpi.NeighborAlltoall(g, send, recv); err != nil {
					return err
				}
			}
			el := []float64{w.VTime() - t0}
			if err := mpi.Allreduce(c.Base(), el, el, mpi.MaxOp[float64]); err != nil {
				return err
			}
			if w.Rank() == 0 {
				vt = el[0]
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return vt
	}
	plain := measure(false)
	reordered := measure(true)
	if reordered >= plain {
		t.Fatalf("reordering did not help: %g vs %g", reordered, plain)
	}
	if reordered > 0.92*plain {
		t.Errorf("reordering gain below 8%%: %g vs %g", reordered, plain)
	}
}

func TestReorderWithoutHierarchyIsIdentity(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil, WithReorder())
		if err != nil {
			return err
		}
		if c.Rank() != w.Rank() {
			return fmt.Errorf("rank changed without a hierarchy: %d -> %d", w.Rank(), c.Rank())
		}
		return nil
	})
}

func TestMpiRemap(t *testing.T) {
	runWorld(t, 4, func(w *mpi.Comm) error {
		// Reverse the ranks.
		perm := []int{3, 2, 1, 0}
		r, err := w.Remap(perm)
		if err != nil {
			return err
		}
		if r.Rank() != 3-w.Rank() {
			return fmt.Errorf("old %d new %d", w.Rank(), r.Rank())
		}
		// Communication uses new numbering.
		buf := []int{w.Rank()}
		if err := mpi.Bcast(r, buf, 0); err != nil {
			return err
		}
		if buf[0] != 3 {
			return fmt.Errorf("bcast from new rank 0 delivered %d", buf[0])
		}
		if _, err := w.Remap([]int{0, 0, 1, 2}); err == nil {
			return fmt.Errorf("non-permutation accepted")
		}
		if _, err := w.Remap([]int{0, 1}); err == nil {
			return fmt.Errorf("short permutation accepted")
		}
		return nil
	})
}

func TestHierarchicalModelPathParams(t *testing.T) {
	m := netmodel.HydraHierarchical(4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	a, b := m.PathParams(0, 3) // same node
	if a != m.Hierarchy.IntraAlpha || b != m.Hierarchy.IntraBeta {
		t.Errorf("intra-node params %g %g", a, b)
	}
	a, b = m.PathParams(0, 4) // different node
	if a != m.Alpha || b != m.Beta {
		t.Errorf("inter-node params %g %g", a, b)
	}
	a, _ = m.PathParams(2, 2) // self
	if a != 0 {
		t.Errorf("self alpha %g", a)
	}
	bad := netmodel.HydraHierarchical(0)
	if err := bad.Validate(); err == nil {
		t.Error("CoresPerNode=0 validated")
	}
}

func TestBestBlockedPermutationPicksShapeForWeights(t *testing.T) {
	grid, _ := vec.NewGrid([]int{8, 8}, nil)
	// Neighborhood with traffic only along dimension 0: the best 4-core
	// node tile is 4x1 (all that traffic intra), not 2x2 or 1x4.
	nbh := vec.Neighborhood{{-1, 0}, {1, 0}}
	perm, ok := BestBlockedPermutation(grid, 4, nbh, nil)
	if !ok {
		t.Fatal("not blockable")
	}
	frac := weightedIntraFraction(grid, nbh, 4, perm, nil)
	// 4x1 tiles: offsets ±1 along dim 0: 3 of 4 rows have an intra
	// neighbor below/above... each cell: 2 neighbors; intra pairs within a
	// 4-run of a ring of 8: 6 of 8 directed edges per column pair of
	// tiles -> fraction 6/8 = 0.75.
	if frac < 0.74 {
		t.Errorf("weighted fraction %f, want >= 0.75 (4x1 tiles)", frac)
	}
	// The same search with traffic only along dimension 1 prefers 1x4.
	nbh2 := vec.Neighborhood{{0, -1}, {0, 1}}
	perm2, _ := BestBlockedPermutation(grid, 4, nbh2, nil)
	if f2 := weightedIntraFraction(grid, nbh2, 4, perm2, nil); f2 < 0.74 {
		t.Errorf("dim-1 fraction %f", f2)
	}
}

func TestBestBlockedPermutationUsesWeights(t *testing.T) {
	grid, _ := vec.NewGrid([]int{8, 8}, nil)
	// Moore neighbors, but almost all weight on the vertical pair: the
	// best tile elongates along dimension 0.
	nbh, _ := vec.Moore(2, 1)
	weights := make([]int, len(nbh))
	for i, rel := range nbh {
		if rel.IsZero() {
			continue
		}
		if rel[1] == 0 {
			weights[i] = 100 // vertical traffic dominates
		} else {
			weights[i] = 1
		}
	}
	perm, ok := BestBlockedPermutation(grid, 4, nbh, weights)
	if !ok {
		t.Fatal("not blockable")
	}
	weighted := weightedIntraFraction(grid, nbh, 4, perm, weights)
	square, _ := BlockedPermutation(grid, 4) // greedy 2x2
	squareFrac := weightedIntraFraction(grid, nbh, 4, square, weights)
	if weighted <= squareFrac {
		t.Errorf("weighted search %f not better than square tiles %f", weighted, squareFrac)
	}
}

func TestBestBlockedPermutationFailure(t *testing.T) {
	grid, _ := vec.NewGrid([]int{3, 3}, nil)
	nbh, _ := vec.Moore(2, 1)
	if _, ok := BestBlockedPermutation(grid, 2, nbh, nil); ok {
		t.Error("9 ranks with 2 cores/node blockable?")
	}
	if _, ok := BestBlockedPermutation(grid, 1, nbh, nil); ok {
		t.Error("coresPerNode=1 blockable?")
	}
}
