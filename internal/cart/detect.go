package cart

import (
	"fmt"

	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// DetectCartesian implements the observation of Section 2.2 of the paper:
// Cartesian Collective Communication needs no new MPI interface, because a
// distributed-graph creation call can cheaply detect that the supplied
// neighborhoods are isomorphic and preselect the specialized algorithms.
//
// Every process passes the ranks of its target neighbors in neighbor-list
// order (the adjacency it would pass to MPI_Dist_graph_create_adjacent) on
// a torus/mesh of the given geometry. The check is collective and costs
// O(t) communication: the root broadcasts its neighbor count and its
// relative neighborhood in canonical (lexicographically sorted) order, and
// every process verifies that its own canonical relative neighborhood is
// identical. On success a Cartesian-neighborhood communicator with the
// canonical neighborhood is returned and detected is true; otherwise
// detected is false on every process (the caller should fall back to the
// general graph collectives).
//
// Relative offsets are reconstructed canonically: each component reduced
// to the symmetric range (−p_i/2, p_i/2] on periodic dimensions, which
// maps torus-equivalent offsets (e.g. +2 ≡ −1 on extent 3) to one
// representative without changing any target.
func DetectCartesian(base *mpi.Comm, dims []int, periods []bool, targets []int, opts ...Option) (c *Comm, detected bool, err error) {
	grid, err := vec.NewGrid(dims, periods)
	if err != nil {
		return nil, false, err
	}
	if grid.Size() != base.Size() {
		return nil, false, fmt.Errorf("cart: grid %v has %d processes, communicator has %d", dims, grid.Size(), base.Size())
	}
	mine := grid.CoordOf(base.Rank())
	rel := make(vec.Neighborhood, len(targets))
	valid := true
	for i, r := range targets {
		if r < 0 || r >= base.Size() {
			valid = false
			break
		}
		rel[i] = canonicalRelative(grid, mine, grid.CoordOf(r))
	}
	if valid {
		vec.SortLex(rel)
	}

	// Collective check: same t everywhere, same canonical offsets as root.
	meta := []int{len(targets)}
	if err := mpi.Bcast(base, meta, 0); err != nil {
		return nil, false, err
	}
	ok := valid && meta[0] == len(targets)
	d := grid.NDims()
	flat := make([]int, meta[0]*d)
	if ok {
		copy(flat, rel.Flatten())
	}
	if err := mpi.Bcast(base, flat, 0); err != nil {
		return nil, false, err
	}
	if ok {
		mineFlat := rel.Flatten()
		for i := range flat {
			if flat[i] != mineFlat[i] {
				ok = false
				break
			}
		}
	}
	agree := []int{1}
	if !ok {
		agree[0] = 0
	}
	if err := mpi.Allreduce(base, agree, agree, mpi.MinOp[int]); err != nil {
		return nil, false, err
	}
	if agree[0] == 0 {
		return nil, false, nil
	}
	canonical, err := vec.Unflatten(flat, d)
	if err != nil {
		return nil, false, err
	}
	cc, err := NeighborhoodCreate(base, dims, periods, canonical, nil, opts...)
	if err != nil {
		return nil, false, err
	}
	return cc, true, nil
}

// canonicalRelative returns the relative offset from coordinate a to b,
// reduced to the symmetric range on periodic dimensions.
func canonicalRelative(g *vec.Grid, a, b vec.Vec) vec.Vec {
	rel := b.Sub(a)
	for i := range rel {
		if g.Periods[i] {
			p := g.Dims[i]
			rel[i] = ((rel[i] % p) + p) % p
			if rel[i] > p/2 {
				rel[i] -= p
			}
		}
	}
	return rel
}
