// Package netmodel provides the linear (α-β) communication cost model that
// the runtime uses to attribute virtual time to message-passing programs.
//
// The paper analyses its algorithms under exactly this model: a round of
// send-receive communication costs α + β·bytes, so a schedule with C rounds
// and per-process volume V·m costs C·α + β·V·m, against t·(α + β·m) for the
// trivial algorithm. Executing the real schedules under a virtual clock
// driven by this model reproduces the performance *shapes* of the paper's
// figures (who wins, by what factor, where the cut-over block size falls)
// without the authors' OmniPath and Cray Gemini hardware — the substitution
// recorded in DESIGN.md for the repro gate "no maintained Go MPI bindings".
//
// In addition to α (wire latency) and β (inverse bandwidth) the model has a
// per-message sender CPU overhead o and receiver overhead g (LogP-style):
// consecutive nonblocking sends serialize on o, which is what makes a
// t-message direct-delivery baseline latency-bound for small blocks.
// Optional noise injection reproduces the outlier/bimodality effects the
// paper discusses in Appendix A and Figure 7.
package netmodel

import (
	"fmt"
	"math"
	"math/rand"
)

// Time is virtual time in seconds.
type Time = float64

// Model is a linear per-message cost model. A nil *Model disables virtual
// timing entirely (the runtime then measures wall-clock time only).
type Model struct {
	// Alpha is the network latency per message in seconds (the α of the
	// paper's cut-off analysis).
	Alpha Time
	// Beta is the transfer time per byte in seconds (the β term).
	Beta Time
	// SendOverhead is the CPU time the sender spends per posted message;
	// consecutive sends from one process serialize on it.
	SendOverhead Time
	// RecvOverhead is the CPU time the receiver spends per completed
	// message.
	RecvOverhead Time
	// Noise, if non-nil, adds a random extra delay to every message.
	Noise *Noise
	// Hierarchy, if non-nil, makes the model two-level: ranks are grouped
	// into nodes of CoresPerNode consecutive physical ranks, and messages
	// within a node use the cheaper intra-node parameters. This is the
	// substrate for evaluating rank reordering (the paper's reorder flag,
	// which it notes current MPI libraries do not exploit).
	Hierarchy *Hierarchy
}

// Hierarchy describes a two-level machine: physical ranks
// [k·CoresPerNode, (k+1)·CoresPerNode) share node k, and intra-node
// messages use the Intra* costs (shared memory) instead of the network's.
type Hierarchy struct {
	CoresPerNode int
	IntraAlpha   Time
	IntraBeta    Time
}

// Validate checks the hierarchy parameters.
func (h *Hierarchy) Validate() error {
	if h.CoresPerNode < 1 || h.IntraAlpha < 0 || h.IntraBeta < 0 {
		return fmt.Errorf("netmodel: invalid hierarchy %+v", *h)
	}
	return nil
}

// SameNode reports whether two physical ranks share a node; always true
// without a hierarchy (a flat machine is one big node for cost purposes
// only when ranks are equal — callers must treat the flat case
// separately), so this returns false for distinct ranks on flat models.
func (m *Model) SameNode(a, b int) bool {
	if a == b {
		return true
	}
	if m.Hierarchy == nil {
		return false
	}
	c := m.Hierarchy.CoresPerNode
	return a/c == b/c
}

// PathParams returns the (α, β) pair for a message between two physical
// ranks: self-messages have no wire latency, intra-node messages the
// hierarchy's costs, everything else the network's.
func (m *Model) PathParams(src, dst int) (alpha, beta Time) {
	if src == dst {
		return 0, m.Beta
	}
	if m.Hierarchy != nil && m.SameNode(src, dst) {
		return m.Hierarchy.IntraAlpha, m.Hierarchy.IntraBeta
	}
	return m.Alpha, m.Beta
}

// Cost returns the in-flight network time of one message of the given size
// in bytes: α + β·bytes, excluding overheads and noise.
func (m *Model) Cost(bytes int) Time {
	return m.Alpha + m.Beta*Time(bytes)
}

// PredictRelative evaluates the paper's analytic comparison for a
// message-combining schedule with rounds C and volume V (in blocks) against
// a direct algorithm with t rounds and volume t, for block size mBytes:
// it returns (Cα + βVm) / (tα + βtm), the expected relative run time.
func (m *Model) PredictRelative(t, rounds, volume, mBytes int) float64 {
	combined := Time(rounds)*m.Alpha + m.Beta*Time(volume*mBytes)
	trivial := Time(t)*m.Alpha + m.Beta*Time(t*mBytes)
	if trivial == 0 {
		return math.Inf(1)
	}
	return combined / trivial
}

// CutoffBytes returns the block size in bytes below which message combining
// is predicted to win: m < (α/β)·(t−C)/(V−t) (Section 3.1 of the paper).
// It returns +Inf when combining wins at every size (V <= t) and 0 when it
// never does (C >= t). This is the paper's idealized linear analysis,
// where α stands for the whole per-message cost; see CutoffBytesLogGP for
// the prediction consistent with this runtime's LogGP-style accounting.
func (m *Model) CutoffBytes(t, rounds, volume int) float64 {
	if rounds >= t {
		return 0
	}
	if volume <= t {
		return math.Inf(1)
	}
	if m.Beta == 0 {
		return math.Inf(1)
	}
	return (m.Alpha / m.Beta) * float64(t-rounds) / float64(volume-t)
}

// CutoffBytesLogGP predicts the crossover block size under this runtime's
// detailed accounting, where per-message costs serialize on the overheads
// o = SendOverhead + RecvOverhead, injection serializes on β, and the
// combining schedule pays the wire latency α once per dimension phase
// while direct delivery pays it once:
//
//	t·(o + β·m) + α  =  C·o + β·V·m + d·α
//	⇒  m* = (o·(t−C) − (d−1)·α) / (β·(V−t))
//
// Results are clamped to [0, +Inf); +Inf when combining wins at every
// size.
func (m *Model) CutoffBytesLogGP(t, rounds, volume, d int) float64 {
	if rounds >= t {
		return 0
	}
	if volume <= t {
		return math.Inf(1)
	}
	if m.Beta == 0 {
		return math.Inf(1)
	}
	o := m.SendOverhead + m.RecvOverhead
	num := o*float64(t-rounds) - float64(d-1)*m.Alpha
	if num <= 0 {
		return 0
	}
	return num / (m.Beta * float64(volume-t))
}

// Validate checks that all cost parameters are non-negative.
func (m *Model) Validate() error {
	if m.Alpha < 0 || m.Beta < 0 || m.SendOverhead < 0 || m.RecvOverhead < 0 {
		return fmt.Errorf("netmodel: negative cost parameter in %+v", *m)
	}
	if m.Hierarchy != nil {
		if err := m.Hierarchy.Validate(); err != nil {
			return err
		}
	}
	if m.Noise != nil {
		return m.Noise.Validate()
	}
	return nil
}

// HydraHierarchical is the Hydra model with a two-level topology: nodes of
// coresPerNode ranks with shared-memory costs inside (≈0.3 µs latency,
// ≈20 GB/s).
func HydraHierarchical(coresPerNode int) *Model {
	m := Hydra()
	m.Hierarchy = &Hierarchy{CoresPerNode: coresPerNode, IntraAlpha: 0.3e-6, IntraBeta: 5.0e-11}
	return m
}

// Noise describes random per-message delay: a lognormal-ish base jitter
// plus rare large spikes, the mixture that produces the long tails and
// bimodal histograms of the paper's Figure 7.
type Noise struct {
	// Jitter scales a |N(0,1)| sample of the message's base cost: a message
	// of cost c gains c·Jitter·|N(0,1)| extra delay.
	Jitter float64
	// SpikeProb is the probability that a message suffers an additional
	// Spike seconds of delay (system noise, cross-traffic).
	SpikeProb float64
	// Spike is the magnitude of the rare extra delay in seconds.
	Spike Time
}

// Validate checks the noise parameters.
func (n *Noise) Validate() error {
	if n.Jitter < 0 || n.Spike < 0 || n.SpikeProb < 0 || n.SpikeProb > 1 {
		return fmt.Errorf("netmodel: invalid noise %+v", *n)
	}
	return nil
}

// Sample draws the extra delay for one message with base cost c using rng.
func (n *Noise) Sample(rng *rand.Rand, c Time) Time {
	extra := c * n.Jitter * math.Abs(rng.NormFloat64())
	if n.SpikeProb > 0 && rng.Float64() < n.SpikeProb {
		extra += n.Spike
	}
	return extra
}

// Presets for the two systems of the paper's Table 2. The absolute numbers
// are public ballpark figures for the interconnect generations (OmniPath,
// Cray Gemini); only the α/β ratio matters for the reproduced shapes.

// Hydra models the Intel Skylake/OmniPath cluster: ~1.5 µs latency,
// ~12.5 GB/s per-link bandwidth, sub-microsecond CPU overheads.
func Hydra() *Model {
	return &Model{
		Alpha:        1.5e-6,
		Beta:         8.0e-11,
		SendOverhead: 0.4e-6,
		RecvOverhead: 0.4e-6,
	}
}

// Titan models the Cray XK7/Gemini system: higher latency (~2.5 µs), ~5 GB/s
// bandwidth, heavier per-message overheads.
func Titan() *Model {
	return &Model{
		Alpha:        2.5e-6,
		Beta:         2.0e-10,
		SendOverhead: 0.8e-6,
		RecvOverhead: 0.8e-6,
	}
}

// TitanNoisy is Titan with the noise mixture used to reproduce the Figure 7
// histograms (large variance at scale, occasional big outliers).
func TitanNoisy() *Model {
	m := Titan()
	m.Noise = &Noise{Jitter: 0.3, SpikeProb: 0.02, Spike: 50e-6}
	return m
}

// Random draws a valid model from rng for randomized testing: latency,
// bandwidth and overheads spanning the realistic ranges between the
// presets (α 0.5–5 µs, β for 1–20 GB/s, overheads 0–1 µs), with optional
// noise (~1 in 3) and an optional two-level hierarchy (~1 in 3). The
// draw is a pure function of the rng stream, so a seeded rng reproduces
// the same model — the property the deterministic simulation harness
// relies on. The returned model always passes Validate.
func Random(rng *rand.Rand) *Model {
	m := &Model{
		Alpha:        (0.5 + 4.5*rng.Float64()) * 1e-6,
		Beta:         1.0 / ((1 + 19*rng.Float64()) * 1e9),
		SendOverhead: rng.Float64() * 1e-6,
		RecvOverhead: rng.Float64() * 1e-6,
	}
	if rng.Intn(3) == 0 {
		m.Noise = &Noise{
			Jitter:    rng.Float64() * 0.5,
			SpikeProb: rng.Float64() * 0.05,
			Spike:     rng.Float64() * 100e-6,
		}
	}
	if rng.Intn(3) == 0 {
		m.Hierarchy = &Hierarchy{
			CoresPerNode: 1 << (1 + rng.Intn(3)), // 2, 4 or 8
			IntraAlpha:   m.Alpha * (0.1 + 0.3*rng.Float64()),
			IntraBeta:    m.Beta * (0.2 + 0.5*rng.Float64()),
		}
	}
	return m
}

// Preset returns a named model preset: "hydra", "titan" or "titan-noisy".
func Preset(name string) (*Model, error) {
	switch name {
	case "hydra":
		return Hydra(), nil
	case "titan":
		return Titan(), nil
	case "titan-noisy":
		return TitanNoisy(), nil
	default:
		return nil, fmt.Errorf("netmodel: unknown preset %q", name)
	}
}
