package netmodel

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestCost(t *testing.T) {
	m := &Model{Alpha: 1e-6, Beta: 1e-9}
	if got := m.Cost(0); got != 1e-6 {
		t.Errorf("Cost(0) = %g", got)
	}
	if got := m.Cost(1000); math.Abs(got-2e-6) > 1e-18 {
		t.Errorf("Cost(1000) = %g, want 2e-6", got)
	}
}

func TestPredictRelative(t *testing.T) {
	m := &Model{Alpha: 1e-6, Beta: 1e-9}
	// t=27 rounds direct vs C=6 rounds, V=54 blocks (d=3, n=3 alltoall).
	// At m -> 0 the ratio approaches C/t.
	small := m.PredictRelative(27, 6, 54, 0)
	if math.Abs(small-6.0/27.0) > 1e-12 {
		t.Errorf("ratio at m=0: %g, want %g", small, 6.0/27.0)
	}
	// At large m it approaches V/t = 2.
	big := m.PredictRelative(27, 6, 54, 1<<30)
	if math.Abs(big-2.0) > 1e-3 {
		t.Errorf("ratio at large m: %g, want ~2", big)
	}
	if r := (&Model{}).PredictRelative(0, 0, 0, 0); !math.IsInf(r, 1) {
		t.Errorf("degenerate ratio = %g", r)
	}
}

func TestCutoffBytes(t *testing.T) {
	m := &Model{Alpha: 1e-6, Beta: 1e-9}
	// Cut-off = (α/β)·(t−C)/(V−t) = 1000·21/27 for d=3,n=3 (t incl. self).
	got := m.CutoffBytes(27, 6, 54)
	want := 1000.0 * 21.0 / 27.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("cutoff = %g, want %g", got, want)
	}
	if c := m.CutoffBytes(5, 5, 9); c != 0 {
		t.Errorf("C >= t should never combine, got %g", c)
	}
	if c := m.CutoffBytes(27, 6, 27); !math.IsInf(c, 1) {
		t.Errorf("V <= t should always combine, got %g", c)
	}
	free := &Model{Alpha: 1e-6, Beta: 0}
	if c := free.CutoffBytes(27, 6, 54); !math.IsInf(c, 1) {
		t.Errorf("beta=0 cutoff = %g", c)
	}
}

func TestValidate(t *testing.T) {
	if err := (&Model{Alpha: -1}).Validate(); err == nil {
		t.Error("negative alpha validated")
	}
	if err := Hydra().Validate(); err != nil {
		t.Errorf("Hydra preset invalid: %v", err)
	}
	bad := Hydra()
	bad.Noise = &Noise{SpikeProb: 2}
	if err := bad.Validate(); err == nil {
		t.Error("invalid noise validated")
	}
}

func TestNoiseSample(t *testing.T) {
	n := &Noise{Jitter: 0.5, SpikeProb: 0.1, Spike: 1e-3}
	rng := rand.New(rand.NewSource(1))
	spikes := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		extra := n.Sample(rng, 1e-6)
		if extra < 0 {
			t.Fatalf("negative noise %g", extra)
		}
		if extra >= 1e-3 {
			spikes++
		}
	}
	frac := float64(spikes) / trials
	if frac < 0.05 || frac > 0.15 {
		t.Errorf("spike fraction %.3f, want ~0.1", frac)
	}
}

func TestNoiseDeterminism(t *testing.T) {
	n := &Noise{Jitter: 0.3, SpikeProb: 0.02, Spike: 5e-5}
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if n.Sample(a, 1e-6) != n.Sample(b, 1e-6) {
			t.Fatal("noise not deterministic under equal seeds")
		}
	}
}

func TestCutoffBytesLogGP(t *testing.T) {
	m := &Model{Alpha: 1.5e-6, Beta: 8e-11, SendOverhead: 0.4e-6, RecvOverhead: 0.4e-6}
	// d=3, n=3: t=26, C=6, V=54.
	got := m.CutoffBytesLogGP(26, 6, 54, 3)
	want := (0.8e-6*20 - 2*1.5e-6) / (8e-11 * 28)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("LogGP cutoff %g, want %g", got, want)
	}
	if c := m.CutoffBytesLogGP(5, 5, 9, 2); c != 0 {
		t.Errorf("C >= t: %g", c)
	}
	if c := m.CutoffBytesLogGP(26, 6, 26, 3); !math.IsInf(c, 1) {
		t.Errorf("V <= t: %g", c)
	}
	if c := (&Model{Alpha: 1e-6}).CutoffBytesLogGP(26, 6, 54, 3); !math.IsInf(c, 1) {
		t.Errorf("beta=0: %g", c)
	}
	// Latency-dominated: overheads too small to ever pay off.
	tiny := &Model{Alpha: 100e-6, Beta: 8e-11, SendOverhead: 1e-9, RecvOverhead: 1e-9}
	if c := tiny.CutoffBytesLogGP(26, 6, 54, 3); c != 0 {
		t.Errorf("negative numerator not clamped: %g", c)
	}
}

func TestHierarchy(t *testing.T) {
	m := HydraHierarchical(8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.SameNode(0, 7) || m.SameNode(7, 8) {
		t.Error("SameNode node boundaries wrong")
	}
	if !m.SameNode(3, 3) {
		t.Error("SameNode self wrong")
	}
	flat := Hydra()
	if flat.SameNode(0, 1) {
		t.Error("flat model claims shared node")
	}
	if !flat.SameNode(2, 2) {
		t.Error("flat model self")
	}
	a, b := m.PathParams(0, 1)
	if a != m.Hierarchy.IntraAlpha || b != m.Hierarchy.IntraBeta {
		t.Errorf("intra params %g %g", a, b)
	}
	a, b = m.PathParams(0, 8)
	if a != m.Alpha || b != m.Beta {
		t.Errorf("inter params %g %g", a, b)
	}
	a, b = m.PathParams(5, 5)
	if a != 0 || b != m.Beta {
		t.Errorf("self params %g %g", a, b)
	}
	bad := HydraHierarchical(4)
	bad.Hierarchy.IntraAlpha = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative intra alpha validated")
	}
	if err := (&Hierarchy{CoresPerNode: 0}).Validate(); err == nil {
		t.Error("zero cores validated")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"hydra", "titan", "titan-noisy"} {
		m, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if m.Alpha <= 0 || m.Beta <= 0 {
			t.Errorf("preset %q has degenerate costs", name)
		}
	}
	if _, err := Preset("bluegene"); err == nil {
		t.Error("unknown preset accepted")
	}
	if TitanNoisy().Noise == nil {
		t.Error("titan-noisy has no noise")
	}
	// Titan (Gemini) should be slower than Hydra (OmniPath) per message.
	if Titan().Alpha <= Hydra().Alpha || Titan().Beta <= Hydra().Beta {
		t.Error("preset cost ordering unexpected")
	}
}

// TestRandomModel checks that Random draws valid models and that the draw
// is a pure function of the rng stream (the determinism the simulation
// harness replays on).
func TestRandomModel(t *testing.T) {
	sawNoise, sawHierarchy := false, false
	for seed := int64(0); seed < 200; seed++ {
		m := Random(rand.New(rand.NewSource(seed)))
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m.Alpha <= 0 || m.Beta <= 0 {
			t.Fatalf("seed %d: degenerate costs %+v", seed, m)
		}
		if m.Noise != nil {
			sawNoise = true
		}
		if m.Hierarchy != nil {
			sawHierarchy = true
			if m.Hierarchy.IntraAlpha >= m.Alpha || m.Hierarchy.IntraBeta >= m.Beta {
				t.Fatalf("seed %d: intra-node costs not cheaper: %+v", seed, m.Hierarchy)
			}
		}
		again := Random(rand.New(rand.NewSource(seed)))
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("seed %d: replay differs: %+v vs %+v", seed, m, again)
		}
	}
	if !sawNoise || !sawHierarchy {
		t.Errorf("200 seeds never drew noise (%v) or hierarchy (%v)", sawNoise, sawHierarchy)
	}
}
