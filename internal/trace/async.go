package trace

import (
	"fmt"
	"sync"
	"time"
)

// AsyncLog records the lifetime of progress-engine futures: one span per
// committed collective, from Start's commit to the engine's retirement,
// so a capture of a concurrent run shows how collectives overlapped in
// flight. Spans are recorded by engine workers while ranks commit more —
// inherently concurrent, so the log is mutex-guarded like RecoveryLog.
type AsyncLog struct {
	mu    sync.Mutex
	start time.Time
	spans []AsyncSpan
}

// AsyncSpan is one future's commit-to-retire window.
type AsyncSpan struct {
	Rank  int
	Seq   int    // commit sequence on the rank's communicator
	Op    string // "alltoall(combining)" etc.
	Err   bool   // completed with an error (failure or cancellation)
	Start time.Duration
	End   time.Duration
}

// NewAsyncLog starts a log; span offsets are relative to this call.
func NewAsyncLog() *AsyncLog {
	return &AsyncLog{start: time.Now()}
}

// Now returns the current offset on the log's clock.
func (l *AsyncLog) Now() time.Duration { return time.Since(l.start) }

// Add records one future span. Safe for concurrent use.
func (l *AsyncLog) Add(s AsyncSpan) {
	l.mu.Lock()
	l.spans = append(l.spans, s)
	l.mu.Unlock()
}

// Spans returns a snapshot of the recorded spans.
func (l *AsyncLog) Spans() []AsyncSpan {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]AsyncSpan(nil), l.spans...)
}

// Export replays the future spans into the timeline: one thread per rank,
// one "future" slice per collective, named with its commit sequence (and
// flagged when it completed with an error), so overlap depth per rank is
// visible as stacked slices in Perfetto.
func (l *AsyncLog) Export(tl *Timeline, pid int) {
	for _, s := range l.Spans() {
		tr := Track{pid, s.Rank}
		tl.SetThread(tr, fmt.Sprintf("rank %d", s.Rank))
		name := fmt.Sprintf("%s #%d", s.Op, s.Seq)
		if s.Err {
			name += " (failed)"
		}
		tl.AddSpan(Span{
			Track:   tr,
			Name:    name,
			Cat:     "future",
			StartNs: s.Start.Nanoseconds(),
			DurNs:   (s.End - s.Start).Nanoseconds(),
			Tag:     s.Seq,
		})
	}
}
