// Package trace records per-rank communication events under the
// virtual-time cost model and renders them as ASCII timelines — a Gantt
// view of a schedule execution that makes the difference between the
// t-round direct exchange and the d-phase combining schedule visible at a
// glance (`cartbench timeline`).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes event types.
type Kind uint8

const (
	// KindSend covers the sender-side injection of one message.
	KindSend Kind = iota
	// KindRecv covers the receiver-side completion of one message (from
	// when the receiver started waiting to when the message was consumed).
	KindRecv
)

// String returns the kind name.
func (k Kind) String() string {
	if k == KindRecv {
		return "recv"
	}
	return "send"
}

// Event is one communication event in virtual time.
type Event struct {
	Rank  int
	Kind  Kind
	Peer  int
	Bytes int
	Tag   int
	// Start and End are virtual times in seconds.
	Start, End float64
}

// Recorder collects events. Each rank appends only to its own slice from
// its own goroutine, so recording needs no locks; read the events only
// after the run has completed.
type Recorder struct {
	perRank [][]Event
}

// NewRecorder prepares a recorder for p ranks.
func NewRecorder(p int) *Recorder {
	return &Recorder{perRank: make([][]Event, p)}
}

// Ranks returns the number of ranks the recorder was created for.
func (r *Recorder) Ranks() int { return len(r.perRank) }

// Add appends an event for its rank. Must only be called from the rank's
// own goroutine (the runtime guarantees this).
func (r *Recorder) Add(e Event) {
	r.perRank[e.Rank] = append(r.perRank[e.Rank], e)
}

// Events returns all recorded events sorted by start time, then rank.
func (r *Recorder) Events() []Event {
	var out []Event
	for _, es := range r.perRank {
		out = append(out, es...)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].Rank < out[b].Rank
	})
	return out
}

// RankEvents returns one rank's events in recording order.
func (r *Recorder) RankEvents(rank int) []Event { return r.perRank[rank] }

// ResetRank discards a rank's events so far. Like Add it must be called
// from the rank's own goroutine (typically right after a barrier, to trim
// setup traffic from the recording).
func (r *Recorder) ResetRank(rank int) { r.perRank[rank] = nil }

// Render draws the timeline: one row per rank, the horizontal axis spanning
// [0, maxEnd] in width character cells. Cells show 's' where the rank was
// injecting sends, 'r' where it was completing receives, '*' where both
// overlapped, and '.' where it was idle. A µs axis line is appended.
func (r *Recorder) Render(width int) string {
	if width < 10 {
		width = 10
	}
	events := r.Events()
	if len(events) == 0 {
		return "(no events recorded)\n"
	}
	minStart, maxEnd := events[0].Start, 0.0
	for _, e := range events {
		if e.Start < minStart {
			minStart = e.Start
		}
		if e.End > maxEnd {
			maxEnd = e.End
		}
	}
	if maxEnd == 0 {
		return "(no virtual time elapsed — tracing requires a cost model)\n"
	}
	span := maxEnd - minStart
	if span <= 0 {
		span = maxEnd
		minStart = 0
	}
	cell := span / float64(width)
	rows := make([][]byte, r.Ranks())
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	mark := func(rank int, start, end float64, ch byte) {
		lo := int((start - minStart) / cell)
		hi := int((end - minStart) / cell)
		if hi >= width {
			hi = width - 1
		}
		if lo > hi {
			lo = hi
		}
		for x := lo; x <= hi; x++ {
			switch {
			case rows[rank][x] == '.':
				rows[rank][x] = ch
			case rows[rank][x] != ch:
				rows[rank][x] = '*'
			}
		}
	}
	for _, e := range events {
		ch := byte('s')
		if e.Kind == KindRecv {
			ch = 'r'
		}
		mark(e.Rank, e.Start, e.End, ch)
	}
	var b strings.Builder
	for rank, row := range rows {
		fmt.Fprintf(&b, "rank %3d |%s|\n", rank, row)
	}
	label := fmt.Sprintf("+%.1f µs", span*1e6)
	pad := width - len(label)
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(&b, "%9s0%s%s\n", "", strings.Repeat(" ", pad), label)
	return b.String()
}

// Summary aggregates the recording: messages and bytes per rank plus the
// global span.
func (r *Recorder) Summary() string {
	var b strings.Builder
	total, bytes := 0, 0
	minStart, maxEnd := 0.0, 0.0
	first := true
	for rank := range r.perRank {
		for _, e := range r.perRank[rank] {
			if e.Kind == KindSend {
				bytes += e.Bytes
				total++
			}
			if first || e.Start < minStart {
				minStart = e.Start
			}
			if e.End > maxEnd {
				maxEnd = e.End
			}
			first = false
		}
	}
	fmt.Fprintf(&b, "%d messages, %d bytes total, span %.2f µs\n", total, bytes, (maxEnd-minStart)*1e6)
	return b.String()
}
