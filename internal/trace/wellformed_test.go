package trace

import (
	"strings"
	"testing"
)

// rec builds a recorder from a flat event list.
func rec(p int, events ...Event) *Recorder {
	r := NewRecorder(p)
	for _, e := range events {
		r.Add(e)
	}
	return r
}

func TestCheckFlowsClean(t *testing.T) {
	// Two matched streams, receives recorded out of match order on rank 1
	// (Wait order differs from match order) — still well-formed.
	r := rec(2,
		Event{Rank: 0, Kind: KindSend, Peer: 1, Bytes: 8, Tag: 1, Start: 0, End: 1},
		Event{Rank: 0, Kind: KindSend, Peer: 1, Bytes: 16, Tag: 1, Start: 1, End: 2},
		Event{Rank: 1, Kind: KindRecv, Peer: 0, Bytes: 16, Tag: 1, Start: 2, End: 4},
		Event{Rank: 1, Kind: KindRecv, Peer: 0, Bytes: 8, Tag: 1, Start: 4, End: 5},
		Event{Rank: 1, Kind: KindSend, Peer: 0, Bytes: 4, Tag: 2, Start: 0, End: 1},
		Event{Rank: 0, Kind: KindRecv, Peer: 1, Bytes: 4, Tag: 2, Start: 1, End: 2},
	)
	if err := CheckFlows(r); err != nil {
		t.Fatal(err)
	}
	if err := CheckFlows(NewRecorder(4)); err != nil {
		t.Fatalf("empty recording: %v", err)
	}
}

func TestCheckFlowsViolations(t *testing.T) {
	cases := []struct {
		name   string
		r      *Recorder
		want   string
	}{
		{
			"lost message",
			rec(2,
				Event{Rank: 0, Kind: KindSend, Peer: 1, Bytes: 8, Tag: 1, Start: 0, End: 1},
			),
			"1 send(s) but 0 recv(s)",
		},
		{
			"phantom recv",
			rec(2,
				Event{Rank: 1, Kind: KindRecv, Peer: 0, Bytes: 8, Tag: 1, Start: 0, End: 1},
			),
			"no matching send",
		},
		{
			"size mismatch",
			rec(2,
				Event{Rank: 0, Kind: KindSend, Peer: 1, Bytes: 8, Tag: 1, Start: 0, End: 1},
				Event{Rank: 1, Kind: KindRecv, Peer: 0, Bytes: 12, Tag: 1, Start: 1, End: 2},
			),
			"sizes",
		},
		{
			"time travel",
			rec(2,
				Event{Rank: 0, Kind: KindSend, Peer: 1, Bytes: 8, Tag: 1, Start: 2, End: 3},
				Event{Rank: 1, Kind: KindRecv, Peer: 0, Bytes: 8, Tag: 1, Start: 0, End: 1},
			),
			"precedes",
		},
		{
			"negative interval",
			rec(2,
				Event{Rank: 0, Kind: KindSend, Peer: 1, Bytes: 8, Tag: 1, Start: 3, End: 2},
			),
			"times",
		},
		{
			"peer out of range",
			rec(2,
				Event{Rank: 0, Kind: KindSend, Peer: 5, Bytes: 8, Tag: 1, Start: 0, End: 1},
			),
			"outside",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckFlows(tc.r)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
