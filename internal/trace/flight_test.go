package trace

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestFlightTailOrderAndWraparound(t *testing.T) {
	fr := NewFlightRecorder(2, 4)
	if fr.Cap() != 4 || fr.Ranks() != 2 {
		t.Fatalf("cap/ranks = %d/%d, want 4/2", fr.Cap(), fr.Ranks())
	}
	for i := 0; i < 10; i++ {
		fr.Record(0, FlightSendPost, i, int64(100+i), int64(i), 0)
	}
	if got := fr.Total(0); got != 10 {
		t.Fatalf("Total(0) = %d, want 10", got)
	}
	tail := fr.Tail(0, 0)
	if len(tail) != 4 {
		t.Fatalf("tail length = %d, want ring cap 4", len(tail))
	}
	// The ring keeps the newest events; tails are oldest-first with
	// monotone sequence numbers.
	for i, ev := range tail {
		wantPeer := int32(6 + i)
		if ev.Peer != wantPeer || ev.Seq != uint64(6+i) {
			t.Fatalf("tail[%d] = peer %d seq %d, want peer %d seq %d", i, ev.Peer, ev.Seq, wantPeer, 6+i)
		}
		if i > 0 && ev.AtNs < tail[i-1].AtNs {
			t.Fatalf("tail timestamps regress: %d after %d", ev.AtNs, tail[i-1].AtNs)
		}
	}
	if bounded := fr.Tail(0, 2); len(bounded) != 2 || bounded[1].Seq != 9 {
		t.Fatalf("Tail(0, 2) = %+v, want the 2 newest (seq 8, 9)", bounded)
	}
	// Rank 1 never recorded; its tail is empty, and TailAll covers both.
	all := fr.TailAll(0)
	if len(all) != 2 || len(all[0]) != 4 || len(all[1]) != 0 {
		t.Fatalf("TailAll shape = %d/%d/%d, want 2 ranks, 4 and 0 events", len(all), len(all[0]), len(all[1]))
	}
}

func TestFlightNilAndOutOfRangeSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(0, FlightSendPost, 1, 2, 3, 4) // must not panic
	if fr.Tail(0, 0) != nil || fr.TailAll(0) != nil || fr.Total(0) != 0 || fr.Cap() != 0 || fr.Ranks() != 0 {
		t.Fatal("nil recorder must behave as empty")
	}
	fr.Export(new(Timeline), 0)

	live := NewFlightRecorder(1, 8)
	live.Record(-1, FlightSendPost, 0, 0, 0, 0) // out of range: dropped
	live.Record(5, FlightSendPost, 0, 0, 0, 0)
	if live.Total(0) != 0 {
		t.Fatal("out-of-range ranks must drop, not misfile")
	}
}

func TestFlightRecordAllocFree(t *testing.T) {
	fr := NewFlightRecorder(1, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		fr.Record(0, FlightRecvDone, 3, 1234, 512, 999)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0 (steady state must be allocation-free)", allocs)
	}
}

func TestFlightConcurrentRecordAndTail(t *testing.T) {
	fr := NewFlightRecorder(4, 32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fr.Record(rank, FlightSendPost, i%4, int64(i), 8, 0)
			}
		}(r)
	}
	for i := 0; i < 200; i++ {
		for _, tail := range fr.TailAll(0) {
			for j := 1; j < len(tail); j++ {
				if tail[j].Seq != tail[j-1].Seq+1 {
					close(stop)
					t.Fatalf("tail sequence gap under concurrency: %d then %d", tail[j-1].Seq, tail[j].Seq)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestFlightKindTextRoundTrip(t *testing.T) {
	kinds := []FlightKind{
		FlightSendPost, FlightRecvPost, FlightRecvDone, FlightFutureCommit,
		FlightFutureRetire, FlightEpochBump, FlightRecovery, FlightFailure,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		if seen[string(data)] {
			t.Fatalf("kind %v marshals to duplicate %s", k, data)
		}
		seen[string(data)] = true
		var back FlightKind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != k {
			t.Fatalf("round trip %v -> %s -> %v", k, data, back)
		}
	}
}

func TestFlightEventJSONRoundTrip(t *testing.T) {
	fr := NewFlightRecorder(1, 4)
	fr.Record(0, FlightRecvDone, 2, 77, 4096, 1500)
	orig := fr.Tail(0, 0)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back []FlightEvent
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != orig[0] {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, orig)
	}
}

func TestFlightExport(t *testing.T) {
	fr := NewFlightRecorder(2, 8)
	fr.Record(0, FlightSendPost, 1, 5, 64, 0)
	fr.Record(1, FlightRecvDone, 0, 5, 64, 200) // latency 200ns -> span
	fr.Record(1, FlightFutureRetire, -1, 0, 300, 7)
	tl := new(Timeline)
	fr.Export(tl, 3)
	if tl.Empty() {
		t.Fatal("export produced an empty timeline")
	}
	if len(tl.spans) != 2 {
		t.Fatalf("spans = %d, want 2 (recv-done + future-retire)", len(tl.spans))
	}
	if tl.spans[0].DurNs != 200 {
		t.Fatalf("recv span duration = %d, want the recorded 200ns latency", tl.spans[0].DurNs)
	}
	if len(tl.instants) != 1 {
		t.Fatalf("instants = %d, want 1 (send-post)", len(tl.instants))
	}
}
