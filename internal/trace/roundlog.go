package trace

import "time"

// RoundKind classifies a schedule-execution round event.
type RoundKind uint8

const (
	// RoundSendPost: the round's send was posted (payload gathered or
	// detached; the source extents are free).
	RoundSendPost RoundKind = iota
	// RoundRecvPost: the round's receive was posted.
	RoundRecvPost
	// RoundRecvDone: the round's receive completed and its payload landed
	// (retired, in the pipelined executor's terms).
	RoundRecvDone
)

// String returns the event name.
func (k RoundKind) String() string {
	switch k {
	case RoundSendPost:
		return "send-post"
	case RoundRecvPost:
		return "recv-post"
	default:
		return "recv-done"
	}
}

// RoundEvent is one wall-clock timestamped executor event: which round of
// which phase did what, with which peer, how long after the log started.
type RoundEvent struct {
	Phase int
	Round int
	Peer  int
	Kind  RoundKind
	At    time.Duration
}

// RoundLog records per-round post/complete events of one plan execution on
// one rank. Unlike Recorder it is wall-clock (the pipelined executor has
// no virtual time) and single-goroutine: the owning rank's executor is the
// only writer, so no locking — attach one log per rank.
type RoundLog struct {
	start  time.Time
	events []RoundEvent
}

// NewRoundLog starts an empty log; At timestamps are relative to this call.
func NewRoundLog() *RoundLog {
	return &RoundLog{start: time.Now()}
}

// Add appends one event.
func (l *RoundLog) Add(phase, round, peer int, kind RoundKind) {
	l.events = append(l.events, RoundEvent{Phase: phase, Round: round, Peer: peer, Kind: kind, At: time.Since(l.start)})
}

// Events returns the recorded events in order.
func (l *RoundLog) Events() []RoundEvent { return l.events }

// Reset clears the log and restarts its clock.
func (l *RoundLog) Reset() {
	l.events = l.events[:0]
	l.start = time.Now()
}

// Reserve grows the event capacity to at least n without recording
// anything, so an executor that knows its round count up front (cart's
// SetRoundLog) appends without allocating.
func (l *RoundLog) Reserve(n int) {
	if cap(l.events) < n {
		ev := make([]RoundEvent, len(l.events), n)
		copy(ev, l.events)
		l.events = ev
	}
}
