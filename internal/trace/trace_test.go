package trace

import (
	"strings"
	"testing"
)

func TestRecorderOrderingAndAccess(t *testing.T) {
	r := NewRecorder(2)
	r.Add(Event{Rank: 1, Kind: KindSend, Peer: 0, Bytes: 8, Start: 2, End: 3})
	r.Add(Event{Rank: 0, Kind: KindRecv, Peer: 1, Bytes: 8, Start: 1, End: 4})
	r.Add(Event{Rank: 0, Kind: KindSend, Peer: 1, Bytes: 4, Start: 0, End: 1})
	es := r.Events()
	if len(es) != 3 {
		t.Fatalf("%d events", len(es))
	}
	if es[0].Start != 0 || es[1].Start != 1 || es[2].Start != 2 {
		t.Fatalf("not sorted: %+v", es)
	}
	if r.Ranks() != 2 {
		t.Errorf("Ranks = %d", r.Ranks())
	}
	if len(r.RankEvents(0)) != 2 || len(r.RankEvents(1)) != 1 {
		t.Errorf("per-rank counts wrong")
	}
	if KindSend.String() != "send" || KindRecv.String() != "recv" {
		t.Error("kind names")
	}
}

func TestRenderTimeline(t *testing.T) {
	r := NewRecorder(2)
	r.Add(Event{Rank: 0, Kind: KindSend, Peer: 1, Start: 0, End: 1e-6})
	r.Add(Event{Rank: 1, Kind: KindRecv, Peer: 0, Start: 0.5e-6, End: 2e-6})
	r.Add(Event{Rank: 1, Kind: KindSend, Peer: 0, Start: 1.5e-6, End: 1.8e-6})
	out := r.Render(40)
	if !strings.Contains(out, "rank   0") || !strings.Contains(out, "rank   1") {
		t.Fatalf("rows missing:\n%s", out)
	}
	if !strings.Contains(out, "s") || !strings.Contains(out, "r") {
		t.Fatalf("activity marks missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("overlap mark missing (send inside recv window):\n%s", out)
	}
	if !strings.Contains(out, "µs") {
		t.Fatalf("axis missing:\n%s", out)
	}
	// Tiny width is clamped, empty recorder handled.
	_ = r.Render(1)
	empty := NewRecorder(1)
	if !strings.Contains(empty.Render(20), "no events") {
		t.Error("empty render")
	}
	zero := NewRecorder(1)
	zero.Add(Event{Rank: 0, Kind: KindSend})
	if !strings.Contains(zero.Render(20), "cost model") {
		t.Error("zero-time render")
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder(2)
	r.Add(Event{Rank: 0, Kind: KindSend, Bytes: 100, Start: 0, End: 1e-6})
	r.Add(Event{Rank: 1, Kind: KindRecv, Bytes: 100, Start: 0, End: 2e-6})
	r.Add(Event{Rank: 1, Kind: KindSend, Bytes: 50, Start: 0, End: 1e-6})
	s := r.Summary()
	if !strings.Contains(s, "2 messages") || !strings.Contains(s, "150 bytes") {
		t.Fatalf("summary: %s", s)
	}
}
