package trace

import (
	"fmt"
	"sort"
)

// The unified event model behind the Perfetto/Chrome exporter. The two
// recording backends — Recorder (virtual-time cost-model events) and
// RoundLog (wall-clock executor events) — predate it and keep their
// zero-overhead recording formats; each knows how to replay itself into a
// Timeline (the EventSink contract), and the Timeline renders once to
// Chrome trace_event JSON (chrome.go). One process (pid) per sink, one
// thread (tid) per rank, so a capture that records both clocks shows them
// as two process groups in ui.perfetto.dev.

// Track identifies one horizontal lane: a (process, thread) pair in
// Chrome's model.
type Track struct {
	Pid int
	Tid int
}

// Span is one named interval on a track. Peer, Bytes, and Tag become the
// slice's args in the exported trace.
type Span struct {
	Track   Track
	Name    string
	Cat     string
	StartNs int64
	DurNs   int64
	Peer    int
	Bytes   int
	Tag     int
}

// Instant is one point event on a track (a send post, whose completion is
// immediate in the buffered runtime).
type Instant struct {
	Track Track
	Name  string
	Cat   string
	AtNs  int64
	Peer  int
	Tag   int
}

// Flow is one sender→receiver arrow: Chrome draws it from the "s" point
// to the "f" point when both ends sit inside slices.
type Flow struct {
	From   Track
	FromNs int64
	To     Track
	ToNs   int64
}

// Timeline collects spans, instants, and flows from any number of sinks
// before a single export. Not safe for concurrent use; fill it after the
// runs have completed.
type Timeline struct {
	spans    []Span
	instants []Instant
	flows    []Flow
	// procs and threads name the track hierarchy, keyed in insertion
	// order for a deterministic export.
	procs   []procName
	threads []threadName
}

type procName struct {
	pid  int
	name string
}

type threadName struct {
	track Track
	name  string
}

// EventSink is the unified export surface: a recording backend replays
// its events into the timeline under the given process id.
type EventSink interface {
	Export(tl *Timeline, pid int)
}

// SetProcess names a process group (e.g. "virtual time", "wall clock").
func (tl *Timeline) SetProcess(pid int, name string) {
	for i := range tl.procs {
		if tl.procs[i].pid == pid {
			tl.procs[i].name = name
			return
		}
	}
	tl.procs = append(tl.procs, procName{pid, name})
}

// SetThread names one track, typically "rank N".
func (tl *Timeline) SetThread(tr Track, name string) {
	for i := range tl.threads {
		if tl.threads[i].track == tr {
			tl.threads[i].name = name
			return
		}
	}
	tl.threads = append(tl.threads, threadName{tr, name})
}

// AddSpan appends one interval.
func (tl *Timeline) AddSpan(s Span) { tl.spans = append(tl.spans, s) }

// AddInstant appends one point event.
func (tl *Timeline) AddInstant(i Instant) { tl.instants = append(tl.instants, i) }

// AddFlow appends one sender→receiver arrow.
func (tl *Timeline) AddFlow(f Flow) { tl.flows = append(tl.flows, f) }

// Empty reports whether nothing has been recorded.
func (tl *Timeline) Empty() bool {
	return len(tl.spans) == 0 && len(tl.instants) == 0
}

// Export replays the recorder's virtual-time events: one thread per rank,
// a slice per send and receive, and a flow arrow from each send to the
// receive that consumed its message. Virtual seconds are scaled to
// nanoseconds so Chrome's microsecond axis shows the model's µs directly.
func (r *Recorder) Export(tl *Timeline, pid int) {
	const scale = 1e9 // virtual seconds → ns
	// Flow matching: the runtime delivers per-(src,dst,tag) in FIFO order,
	// so the i-th send of a stream pairs with the i-th receive.
	type stream struct{ src, dst, tag int }
	sends := make(map[stream][]Event)
	for rank := range r.perRank {
		tl.SetThread(Track{pid, rank}, fmt.Sprintf("rank %d", rank))
		for _, e := range r.perRank[rank] {
			if e.Kind == KindSend {
				k := stream{e.Rank, e.Peer, e.Tag}
				sends[k] = append(sends[k], e)
			}
			name := fmt.Sprintf("recv←%d", e.Peer)
			if e.Kind == KindSend {
				name = fmt.Sprintf("send→%d", e.Peer)
			}
			tl.AddSpan(Span{
				Track:   Track{pid, e.Rank},
				Name:    name,
				Cat:     e.Kind.String(),
				StartNs: int64(e.Start * scale),
				DurNs:   int64((e.End - e.Start) * scale),
				Peer:    e.Peer,
				Bytes:   e.Bytes,
				Tag:     e.Tag,
			})
		}
	}
	for rank := range r.perRank {
		for _, e := range r.perRank[rank] {
			if e.Kind != KindRecv {
				continue
			}
			k := stream{e.Peer, e.Rank, e.Tag}
			q := sends[k]
			if len(q) == 0 {
				continue
			}
			s := q[0]
			sends[k] = q[1:]
			tl.AddFlow(Flow{
				From:   Track{pid, s.Rank},
				FromNs: int64(s.Start * scale),
				To:     Track{pid, e.Rank},
				ToNs:   int64(e.End * scale),
			})
		}
	}
}

// RoundLogSet groups per-rank wall-clock round logs (index = rank) into
// one exportable sink, completing the EventSink pairing with Recorder.
type RoundLogSet []*RoundLog

// Export replays the executor logs: a slice per round from receive post
// to retirement, an instant per send post. Rounds whose retirement was
// not recorded (detached logs, aborted runs) export the post as an
// instant so nothing silently disappears.
func (ls RoundLogSet) Export(tl *Timeline, pid int) {
	for rank, l := range ls {
		tl.SetThread(Track{pid, rank}, fmt.Sprintf("rank %d", rank))
		if l == nil {
			continue
		}
		type key struct{ phase, round int }
		posts := make(map[key]RoundEvent)
		for _, e := range l.Events() {
			tr := Track{pid, rank}
			switch e.Kind {
			case RoundSendPost:
				tl.AddInstant(Instant{
					Track: tr,
					Name:  fmt.Sprintf("p%dr%d send→%d", e.Phase, e.Round, e.Peer),
					Cat:   "send-post",
					AtNs:  e.At.Nanoseconds(),
					Peer:  e.Peer,
				})
			case RoundRecvPost:
				posts[key{e.Phase, e.Round}] = e
			case RoundRecvDone:
				k := key{e.Phase, e.Round}
				post, ok := posts[k]
				if !ok {
					continue
				}
				delete(posts, k)
				tl.AddSpan(Span{
					Track:   tr,
					Name:    fmt.Sprintf("p%dr%d recv←%d", e.Phase, e.Round, e.Peer),
					Cat:     "round",
					StartNs: post.At.Nanoseconds(),
					DurNs:   (e.At - post.At).Nanoseconds(),
					Peer:    e.Peer,
				})
			}
		}
		// Unretired receives: export the bare post.
		leftover := make([]RoundEvent, 0, len(posts))
		for _, e := range posts {
			leftover = append(leftover, e)
		}
		sort.Slice(leftover, func(a, b int) bool {
			if leftover[a].Phase != leftover[b].Phase {
				return leftover[a].Phase < leftover[b].Phase
			}
			return leftover[a].Round < leftover[b].Round
		})
		for _, e := range leftover {
			tl.AddInstant(Instant{
				Track: Track{pid, rank},
				Name:  fmt.Sprintf("p%dr%d recv-post←%d", e.Phase, e.Round, e.Peer),
				Cat:   "recv-post",
				AtNs:  e.At.Nanoseconds(),
				Peer:  e.Peer,
			})
		}
	}
}
