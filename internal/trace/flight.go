package trace

import (
	"fmt"
	"sync"
	"time"
)

// The flight recorder is the always-on half of the introspection plane: a
// bounded per-rank ring of recent runtime events that costs one uncontended
// mutex and a struct copy per record, holds fixed memory however long the
// world runs, and can be snapshotted at any moment — by the debug server's
// /debug/flight endpoint, or by the post-mortem dumper the instant the
// deadlock watchdog fires. Unlike Recorder/RoundLog (which accumulate a
// whole run for offline export), the ring forgets: it answers "what were
// the last few thousand things this rank did", which is the question a hang
// or a straggler investigation actually asks.

// FlightKind enumerates the event taxonomy of the flight recorder.
type FlightKind uint8

const (
	// FlightSendPost records a send entering the wire (post == completion
	// in the buffered runtime). Peer = destination, Bytes = payload size.
	FlightSendPost FlightKind = iota
	// FlightRecvPost records a receive being posted. Peer = source
	// (-1 for AnySource).
	FlightRecvPost
	// FlightRecvDone records a receive completing. Peer = matched source,
	// Bytes = received bytes, Arg = post→completion latency in ns.
	FlightRecvDone
	// FlightFutureCommit records an async collective committed to the
	// progress engine. Arg = future sequence number.
	FlightFutureCommit
	// FlightFutureRetire records an async collective retiring. Arg = the
	// future sequence number, Bytes = commit→retire latency in ns.
	FlightFutureRetire
	// FlightEpochBump records the communication epoch advancing during
	// recovery. Arg = new epoch.
	FlightEpochBump
	// FlightRecovery records one recovery step (shrink, re-embed, agree).
	// Arg is step-specific.
	FlightRecovery
	// FlightFailure records a typed failure observed by this rank
	// (watchdog diagnosis, rank crash, abort cascade).
	FlightFailure
)

var flightKindNames = [...]string{
	FlightSendPost:     "send-post",
	FlightRecvPost:     "recv-post",
	FlightRecvDone:     "recv-done",
	FlightFutureCommit: "future-commit",
	FlightFutureRetire: "future-retire",
	FlightEpochBump:    "epoch-bump",
	FlightRecovery:     "recovery",
	FlightFailure:      "failure",
}

// String returns the kind's taxonomy name.
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return fmt.Sprintf("flight-kind-%d", int(k))
}

// MarshalText renders the kind name, so flight tails in JSON bundles read
// as taxonomy names rather than bare numbers.
func (k FlightKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a taxonomy name back — post-mortem bundles must be
// parseable by carttrace, not just writable.
func (k *FlightKind) UnmarshalText(b []byte) error {
	s := string(b)
	for i, n := range flightKindNames {
		if n == s {
			*k = FlightKind(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown flight kind %q", s)
}

// FlightEvent is one fixed-size flight-recorder record. Fields beyond Kind
// are kind-specific (see the kind constants); unused ones are zero.
type FlightEvent struct {
	Seq   uint64     `json:"seq"` // per-ring sequence number, from 0
	AtNs  int64      `json:"at_ns"`
	Kind  FlightKind `json:"kind"`
	Rank  int32      `json:"rank"`
	Peer  int32      `json:"peer"`
	Tag   int64      `json:"tag"`
	Bytes int64      `json:"bytes,omitempty"`
	Arg   int64      `json:"arg,omitempty"`
}

// flightRing is one rank's bounded event ring. A plain mutex rather than a
// seqlock: the critical section is an index bump and a struct copy, the
// lock is all but uncontended (one rank's events come from its own
// goroutine plus at most one engine worker), and unlike a seqlock it is
// clean under the race detector, which the whole test tier runs under.
type flightRing struct {
	mu  sync.Mutex
	buf []FlightEvent
	n   uint64 // total events ever recorded; buf[(n-1) % len] is newest
}

// FlightRecorder is the per-world set of per-rank rings. The zero pointer
// is a disabled recorder: every method nil-checks, so call sites hook in
// unconditionally and pay one branch when recording is off.
type FlightRecorder struct {
	rings []flightRing
	cap   int
	start time.Time
}

// DefaultFlightCap is the per-rank ring capacity when none is given:
// recent-history depth for a busy rank at ~56 B/event, ~115 KiB per rank.
const DefaultFlightCap = 2048

// NewFlightRecorder creates rings for ranks ranks with the given per-rank
// capacity (<=0 selects DefaultFlightCap). All ring memory is allocated
// here; recording never allocates.
func NewFlightRecorder(ranks, capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	f := &FlightRecorder{rings: make([]flightRing, ranks), cap: capacity, start: time.Now()}
	for i := range f.rings {
		f.rings[i].buf = make([]FlightEvent, capacity)
	}
	return f
}

// Ranks returns the number of per-rank rings (0 when disabled).
func (f *FlightRecorder) Ranks() int {
	if f == nil {
		return 0
	}
	return len(f.rings)
}

// Cap returns the per-rank ring capacity (0 when disabled).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return f.cap
}

// now returns nanoseconds since the recorder was created (monotonic).
func (f *FlightRecorder) now() int64 { return int64(time.Since(f.start)) }

// Now returns the recorder's monotonic clock reading in nanoseconds — the
// timebase of recorded events (0 when disabled). Callers that stamp their
// own durations (a receive's post time, say) read it so latencies line up
// with event timestamps.
func (f *FlightRecorder) Now() int64 {
	if f == nil {
		return 0
	}
	return f.now()
}

// Record appends one event to rank's ring, stamping its time and sequence
// number. Safe for concurrent use; no-op on a nil recorder or an
// out-of-range rank (a shrunk world keeps its original ring count, but a
// defensive check beats a panic inside the runtime's hot path).
func (f *FlightRecorder) Record(rank int, kind FlightKind, peer int, tag, bytes, arg int64) {
	if f == nil || rank < 0 || rank >= len(f.rings) {
		return
	}
	at := f.now()
	r := &f.rings[rank]
	r.mu.Lock()
	e := &r.buf[r.n%uint64(len(r.buf))]
	e.Seq = r.n
	e.AtNs = at
	e.Kind = kind
	e.Rank = int32(rank)
	e.Peer = int32(peer)
	e.Tag = tag
	e.Bytes = bytes
	e.Arg = arg
	r.n++
	r.mu.Unlock()
}

// Total returns the number of events ever recorded on rank's ring (not
// bounded by capacity — the ring keeps only the newest Cap of them).
func (f *FlightRecorder) Total(rank int) uint64 {
	if f == nil || rank < 0 || rank >= len(f.rings) {
		return 0
	}
	r := &f.rings[rank]
	r.mu.Lock()
	n := r.n
	r.mu.Unlock()
	return n
}

// Tail copies out the newest events of rank's ring, oldest first, at most
// max (<=0 means the whole retained window). The copy is taken under the
// ring lock, so it is a consistent snapshot of that rank's recent history.
func (f *FlightRecorder) Tail(rank, max int) []FlightEvent {
	if f == nil || rank < 0 || rank >= len(f.rings) {
		return nil
	}
	r := &f.rings[rank]
	r.mu.Lock()
	defer r.mu.Unlock()
	held := r.n
	if held > uint64(len(r.buf)) {
		held = uint64(len(r.buf))
	}
	if max > 0 && uint64(max) < held {
		held = uint64(max)
	}
	out := make([]FlightEvent, held)
	for i := uint64(0); i < held; i++ {
		seq := r.n - held + i
		out[i] = r.buf[seq%uint64(len(r.buf))]
	}
	return out
}

// TailAll returns every rank's tail (index = rank), each bounded by max.
func (f *FlightRecorder) TailAll(max int) [][]FlightEvent {
	if f == nil {
		return nil
	}
	out := make([][]FlightEvent, len(f.rings))
	for i := range f.rings {
		out[i] = f.Tail(i, max)
	}
	return out
}

// Export replays every ring's retained tail into the timeline — the flight
// recorder's EventSink contract. Matched recv post→done pairs render as
// spans (the done event carries its latency, so the span needs no pairing
// search); everything else is an instant.
func (f *FlightRecorder) Export(tl *Timeline, pid int) {
	if f == nil {
		return
	}
	for rank := range f.rings {
		tr := Track{pid, rank}
		tl.SetThread(tr, fmt.Sprintf("rank %d", rank))
		for _, e := range f.Tail(rank, 0) {
			switch e.Kind {
			case FlightRecvDone:
				tl.AddSpan(Span{
					Track: tr, Name: fmt.Sprintf("recv←%d", e.Peer), Cat: "flight",
					StartNs: e.AtNs - e.Arg, DurNs: e.Arg,
					Peer: int(e.Peer), Bytes: int(e.Bytes), Tag: int(e.Tag),
				})
			case FlightFutureRetire:
				tl.AddSpan(Span{
					Track: tr, Name: fmt.Sprintf("future #%d", e.Arg), Cat: "flight",
					StartNs: e.AtNs - e.Bytes, DurNs: e.Bytes, Tag: int(e.Tag),
				})
			default:
				tl.AddInstant(Instant{
					Track: tr, Name: e.Kind.String(), Cat: "flight",
					AtNs: e.AtNs, Peer: int(e.Peer), Tag: int(e.Tag),
				})
			}
		}
	}
}
