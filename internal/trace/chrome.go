package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace_event exporter: renders a Timeline as the JSON array
// format consumed by ui.perfetto.dev and chrome://tracing. Field order is
// fixed by the Go struct declarations (encoding/json emits struct fields
// in order, never map order), events are sorted by timestamp, and
// metadata comes first — so the output is byte-stable for a given
// timeline, which the golden-file test pins.

// chromeEvent is one trace_event entry. Timestamps are microseconds
// (Chrome's unit); Dur is meaningful only for "X" slices, where zero is
// legal. ID and BindingPoint serve the "s"/"f" flow pairs.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	ID   int     `json:"id,omitempty"`
	BP   string  `json:"bp,omitempty"`
	S    string  `json:"s,omitempty"` // instant scope
	Args any     `json:"args,omitempty"`
}

// spanArgs are the slice arguments. Peer is always present (0 is a valid
// rank); Bytes and Tag are dropped when unset so round slices (which
// carry neither) stay compact.
type spanArgs struct {
	Peer  int `json:"peer"`
	Bytes int `json:"bytes,omitempty"`
	Tag   int `json:"tag,omitempty"`
}

type nameArgs struct {
	Name string `json:"name"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const usPerNs = 1e-3

// WriteChrome renders the timeline as Chrome trace_event JSON. Metadata
// (process/thread names) leads; spans, instants, and flow pairs follow
// sorted by timestamp, then pid, then tid, so timestamps are monotone
// within the event stream.
func WriteChrome(w io.Writer, tl *Timeline) error {
	var evs []chromeEvent
	for _, s := range tl.spans {
		evs = append(evs, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: float64(s.StartNs) * usPerNs, Dur: float64(s.DurNs) * usPerNs,
			Pid: s.Track.Pid, Tid: s.Track.Tid,
			Args: spanArgs{Peer: s.Peer, Bytes: s.Bytes, Tag: s.Tag},
		})
	}
	for _, i := range tl.instants {
		evs = append(evs, chromeEvent{
			Name: i.Name, Cat: i.Cat, Ph: "i",
			Ts:  float64(i.AtNs) * usPerNs,
			Pid: i.Track.Pid, Tid: i.Track.Tid,
			S:    "t",
			Args: spanArgs{Peer: i.Peer, Tag: i.Tag},
		})
	}
	for fi, f := range tl.flows {
		id := fi + 1
		evs = append(evs, chromeEvent{
			Name: "msg", Cat: "flow", Ph: "s", ID: id,
			Ts:  float64(f.FromNs) * usPerNs,
			Pid: f.From.Pid, Tid: f.From.Tid,
		}, chromeEvent{
			Name: "msg", Cat: "flow", Ph: "f", ID: id, BP: "e",
			Ts:  float64(f.ToNs) * usPerNs,
			Pid: f.To.Pid, Tid: f.To.Tid,
		})
	}
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].Ts != evs[b].Ts {
			return evs[a].Ts < evs[b].Ts
		}
		if evs[a].Pid != evs[b].Pid {
			return evs[a].Pid < evs[b].Pid
		}
		return evs[a].Tid < evs[b].Tid
	})

	meta := make([]chromeEvent, 0, len(tl.procs)+len(tl.threads))
	for _, p := range tl.procs {
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", Pid: p.pid, Args: nameArgs{p.name},
		})
	}
	for _, t := range tl.threads {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: t.track.Pid, Tid: t.track.Tid,
			Args: nameArgs{t.name},
		})
	}

	out := chromeFile{TraceEvents: append(meta, evs...), DisplayTimeUnit: "ms"}
	if out.TraceEvents == nil {
		out.TraceEvents = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
