package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTimeline is a small hand-built capture covering every event
// family: named processes and threads, send/recv slices with args, a
// round slice, an instant, and a flow pair.
func goldenTimeline() *Timeline {
	tl := &Timeline{}
	tl.SetProcess(0, "virtual time")
	tl.SetProcess(1, "wall clock")
	tl.SetThread(Track{0, 0}, "rank 0")
	tl.SetThread(Track{0, 1}, "rank 1")
	tl.SetThread(Track{1, 0}, "rank 0")
	tl.AddSpan(Span{Track: Track{0, 0}, Name: "send→1", Cat: "send", StartNs: 1000, DurNs: 500, Peer: 1, Bytes: 128, Tag: 7})
	tl.AddSpan(Span{Track: Track{0, 1}, Name: "recv←0", Cat: "recv", StartNs: 1200, DurNs: 900, Peer: 0, Bytes: 128, Tag: 7})
	tl.AddSpan(Span{Track: Track{1, 0}, Name: "p0r0 recv←1", Cat: "round", StartNs: 0, DurNs: 2500, Peer: 1})
	tl.AddInstant(Instant{Track: Track{1, 0}, Name: "p0r0 send→1", Cat: "send-post", AtNs: 300, Peer: 1})
	tl.AddFlow(Flow{From: Track{0, 0}, FromNs: 1000, To: Track{0, 1}, ToNs: 2100})
	return tl
}

// TestChromeGolden pins the exporter's exact byte output: stable field
// ordering, metadata first, events sorted by timestamp. Run with -update
// to regenerate after an intentional format change.
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenTimeline()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exporter output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestChromeValidAndMonotone checks the structural contract on a larger
// generated capture: the output is valid JSON, every event carries a
// known phase, and non-metadata timestamps never decrease.
func TestChromeValidAndMonotone(t *testing.T) {
	rec := NewRecorder(4)
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 5; i++ {
			peer := (rank + 1) % 4
			start := float64(i)*1e-6 + float64(rank)*1e-7
			rec.Add(Event{Rank: rank, Kind: KindSend, Peer: peer, Bytes: 64, Tag: 100 + i, Start: start, End: start + 5e-7})
			rec.Add(Event{Rank: rank, Kind: KindRecv, Peer: (rank + 3) % 4, Bytes: 64, Tag: 100 + i, Start: start, End: start + 9e-7})
		}
	}
	tl := &Timeline{}
	tl.SetProcess(0, "virtual time")
	rec.Export(tl, 0)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tl); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("exporter produced invalid JSON")
	}
	var parsed struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Ts  float64 `json:"ts"`
			Pid int     `json:"pid"`
			Tid int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	known := map[string]bool{"M": true, "X": true, "i": true, "s": true, "f": true}
	last := -1.0
	inMeta := true
	for i, e := range parsed.TraceEvents {
		if !known[e.Ph] {
			t.Fatalf("event %d: unknown phase %q", i, e.Ph)
		}
		if e.Ph == "M" {
			if !inMeta {
				t.Fatalf("event %d: metadata after timed events", i)
			}
			continue
		}
		inMeta = false
		if e.Ts < last {
			t.Fatalf("event %d: timestamp %v < previous %v; not monotone", i, e.Ts, last)
		}
		last = e.Ts
	}
	// Every send matched a receive on this ring: 20 flows, each two events.
	sCount, fCount := 0, 0
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "s":
			sCount++
		case "f":
			fCount++
		}
	}
	if sCount != 20 || fCount != 20 {
		t.Errorf("flow pairs: %d starts, %d finishes; want 20 each", sCount, fCount)
	}
}

// TestRoundLogSetExport checks the wall-clock sink: recv post/done pairs
// become slices, send posts become instants, and an unretired receive
// still surfaces as a post instant.
func TestRoundLogSetExport(t *testing.T) {
	l := NewRoundLog()
	l.Add(0, 0, 2, RoundRecvPost)
	l.Add(0, 0, 1, RoundSendPost)
	l.Add(0, 0, 2, RoundRecvDone)
	l.Add(1, 0, 3, RoundRecvPost) // never done
	tl := &Timeline{}
	tl.SetProcess(1, "wall clock")
	RoundLogSet{l, nil}.Export(tl, 1)
	if len(tl.spans) != 1 {
		t.Fatalf("%d spans exported; want 1", len(tl.spans))
	}
	if tl.spans[0].Peer != 2 || tl.spans[0].Cat != "round" {
		t.Errorf("round slice = %+v", tl.spans[0])
	}
	if len(tl.instants) != 2 {
		t.Fatalf("%d instants exported; want 2 (send post + unretired recv post)", len(tl.instants))
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tl); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON")
	}
}

// TestRoundLogReserveAndReset: Reserve preallocates capacity that Reset
// keeps, so a reserved log's appends never reallocate.
func TestRoundLogReserveAndReset(t *testing.T) {
	l := NewRoundLog()
	l.Reserve(64)
	if cap(l.events) < 64 {
		t.Fatalf("Reserve(64) left capacity %d", cap(l.events))
	}
	for i := 0; i < 64; i++ {
		l.Add(0, i, 1, RoundSendPost)
	}
	before := &l.events[0]
	l.Reset()
	if len(l.Events()) != 0 {
		t.Fatal("Reset kept events")
	}
	for i := 0; i < 64; i++ {
		l.Add(0, i, 1, RoundRecvPost)
	}
	if &l.events[0] != before {
		t.Error("Reset dropped the reserved backing array")
	}
	if l.events[0].At < 0 || l.events[0].At > time.Minute {
		t.Errorf("post-Reset timestamp not rebased: %v", l.events[0].At)
	}
}
