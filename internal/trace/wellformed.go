package trace

import (
	"fmt"
	"sort"
)

// CheckFlows validates that a completed run's recording describes a
// physically possible execution. It is one of the simulation harness's
// differential oracles: the runtime records sends at injection and
// receives at consumption, so in a clean run the two views must describe
// the same message flows.
//
// Checked, per directed stream (src rank, dst rank, tag):
//
//   - every event is internally sane: Start <= End, Start >= 0, ranks and
//     peers within the recorder's rank count;
//   - the stream carries the same number of messages in both views;
//   - the multiset of message sizes matches between senders and receivers;
//   - no message completes before it could have been injected: matching
//     within a stream is FIFO, so the k-th smallest receive completion
//     must be at or after the k-th smallest send completion. (Receives
//     are recorded in Wait order, which need not be match order, hence
//     the sorted comparison rather than a positional one.)
//
// CheckFlows needs a recording made under a virtual-time model (without
// one the runtime records nothing, and an empty recording passes
// trivially).
func CheckFlows(r *Recorder) error {
	type key struct {
		src, dst, tag int
	}
	p := r.Ranks()
	sends := make(map[key][]Event)
	recvs := make(map[key][]Event)
	for rank := 0; rank < p; rank++ {
		for _, e := range r.RankEvents(rank) {
			if e.Rank != rank {
				return fmt.Errorf("trace: rank %d recorded an event claiming rank %d", rank, e.Rank)
			}
			if e.Peer < 0 || e.Peer >= p {
				return fmt.Errorf("trace: rank %d %s event has peer %d outside [0,%d)", rank, e.Kind, e.Peer, p)
			}
			if e.Start < 0 || e.End < e.Start {
				return fmt.Errorf("trace: rank %d %s event to/from %d has times [%g,%g]", rank, e.Kind, e.Peer, e.Start, e.End)
			}
			if e.Bytes < 0 {
				return fmt.Errorf("trace: rank %d %s event has negative size %d", rank, e.Kind, e.Bytes)
			}
			switch e.Kind {
			case KindSend:
				k := key{src: rank, dst: e.Peer, tag: e.Tag}
				sends[k] = append(sends[k], e)
			case KindRecv:
				k := key{src: e.Peer, dst: rank, tag: e.Tag}
				recvs[k] = append(recvs[k], e)
			default:
				return fmt.Errorf("trace: rank %d event has unknown kind %d", rank, e.Kind)
			}
		}
	}
	for k, ss := range sends {
		rs := recvs[k]
		if len(rs) != len(ss) {
			return fmt.Errorf("trace: stream %d->%d tag %d: %d send(s) but %d recv(s)", k.src, k.dst, k.tag, len(ss), len(rs))
		}
		sizes := func(es []Event) []int {
			out := make([]int, len(es))
			for i, e := range es {
				out[i] = e.Bytes
			}
			sort.Ints(out)
			return out
		}
		sb, rb := sizes(ss), sizes(rs)
		for i := range sb {
			if sb[i] != rb[i] {
				return fmt.Errorf("trace: stream %d->%d tag %d: sent sizes %v but received sizes %v", k.src, k.dst, k.tag, sb, rb)
			}
		}
		ends := func(es []Event) []float64 {
			out := make([]float64, len(es))
			for i, e := range es {
				out[i] = e.End
			}
			sort.Float64s(out)
			return out
		}
		se, re := ends(ss), ends(rs)
		for i := range se {
			if re[i] < se[i] {
				return fmt.Errorf("trace: stream %d->%d tag %d: %d-th completion at %g precedes %d-th injection end %g",
					k.src, k.dst, k.tag, i, re[i], i, se[i])
			}
		}
	}
	for k, rs := range recvs {
		if len(sends[k]) == 0 {
			return fmt.Errorf("trace: stream %d->%d tag %d: %d recv(s) with no matching send", k.src, k.dst, k.tag, len(rs))
		}
	}
	return nil
}
