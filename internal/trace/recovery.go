package trace

import (
	"fmt"
	"sync"
	"time"
)

// RecoveryLog records shrink-and-re-embed recovery windows so a capture of
// a faulty run shows the outage: one span per (rank, recovery), from the
// moment the rank entered recovery to the moment it resumed on the new
// epoch's communicator. Ranks record concurrently (recovery is inherently
// concurrent), so unlike Recorder/RoundLog the log is mutex-guarded; the
// nanoseconds of lock overhead are irrelevant next to a consensus round.
type RecoveryLog struct {
	mu    sync.Mutex
	start time.Time
	spans []RecoverySpan
}

// RecoverySpan is one rank's recovery window.
type RecoverySpan struct {
	Rank  int
	Epoch int64         // epoch the rank recovered INTO
	Dead  []int         // world ranks declared dead by this recovery
	Start time.Duration // offsets from the log's creation
	End   time.Duration
}

// NewRecoveryLog starts a log; span offsets are relative to this call, so
// create it alongside the RoundLogs that share the wall clock.
func NewRecoveryLog() *RecoveryLog {
	return &RecoveryLog{start: time.Now()}
}

// Now returns the current offset on the log's clock.
func (l *RecoveryLog) Now() time.Duration { return time.Since(l.start) }

// Add records one recovery window. Safe for concurrent use.
func (l *RecoveryLog) Add(s RecoverySpan) {
	l.mu.Lock()
	l.spans = append(l.spans, s)
	l.mu.Unlock()
}

// Spans returns a snapshot of the recorded windows.
func (l *RecoveryLog) Spans() []RecoverySpan {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]RecoverySpan(nil), l.spans...)
}

// Export replays the recovery windows into the timeline: one thread per
// rank, a "recovery" slice per window named with the epoch entered and the
// dead set, so the outage is visible as a distinct band in Perfetto.
func (l *RecoveryLog) Export(tl *Timeline, pid int) {
	for _, s := range l.Spans() {
		tr := Track{pid, s.Rank}
		tl.SetThread(tr, fmt.Sprintf("rank %d", s.Rank))
		tl.AddSpan(Span{
			Track:   tr,
			Name:    fmt.Sprintf("recovery→epoch %d (dead %v)", s.Epoch, s.Dead),
			Cat:     "recovery",
			StartNs: s.Start.Nanoseconds(),
			DurNs:   (s.End - s.Start).Nanoseconds(),
			Peer:    len(s.Dead),
			Tag:     int(s.Epoch),
		})
	}
}
