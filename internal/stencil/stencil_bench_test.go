package stencil

import (
	"fmt"
	"testing"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
)

// BenchmarkHaloExchange2D is the Section 3.4 ablation at application
// level: the plain Moore exchange (corners as separate two-hop blocks)
// against the two-phase combined schedule (corners forwarded inside
// widened strips), under the Hydra model, for growing halo depths — the
// larger the halo, the more corner bytes the combined schedule saves.
func BenchmarkHaloExchange2D(b *testing.B) {
	for _, halo := range []int{1, 4} {
		for _, style := range []string{"moore", "twophase"} {
			halo, style := halo, style
			b.Run(fmt.Sprintf("halo%d_%s", halo, style), func(b *testing.B) {
				var vt float64
				err := mpi.Run(mpi.Config{Procs: 16, Model: netmodel.Hydra(), Seed: 1, Timeout: time.Minute}, func(w *mpi.Comm) error {
					g, err := NewGrid2D[float64](16, 16, halo)
					if err != nil {
						return err
					}
					var exchange func() error
					switch style {
					case "moore":
						ex, err := NewExchanger2D(w, []int{4, 4}, g, true, cart.Combining)
						if err != nil {
							return err
						}
						exchange = func() error { return ExchangeGrid2D(ex, g) }
					case "twophase":
						ex, err := NewTwoPhaseExchanger2D(w, []int{4, 4}, g, cart.Combining)
						if err != nil {
							return err
						}
						exchange = func() error { return ExchangeTwoPhase2D(ex, g) }
					}
					if err := mpi.Barrier(w); err != nil {
						return err
					}
					t0 := w.VTime()
					for i := 0; i < b.N; i++ {
						if err := exchange(); err != nil {
							return err
						}
					}
					el := []float64{w.VTime() - t0}
					if err := mpi.Allreduce(w, el, el, mpi.MaxOp[float64]); err != nil {
						return err
					}
					if w.Rank() == 0 {
						vt = el[0] / float64(b.N)
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(vt*1e6, "vus/op")
			})
		}
	}
}

// BenchmarkJacobi9Iteration measures one full distributed iteration
// (exchange + kernel) in wall time — the end-to-end cost an application
// sees.
func BenchmarkJacobi9Iteration(b *testing.B) {
	err := mpi.Run(mpi.Config{Procs: 4, Timeout: time.Minute}, func(w *mpi.Comm) error {
		src, err := NewGrid2D[float64](32, 32, 1)
		if err != nil {
			return err
		}
		dst, _ := NewGrid2D[float64](32, 32, 1)
		ex, err := NewExchanger2D(w, []int{2, 2}, src, true, cart.Combining)
		if err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if err := ExchangeGrid2D(ex, src); err != nil {
				return err
			}
			Jacobi9(dst, src)
			src, dst = dst, src
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
