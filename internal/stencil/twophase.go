package stencil

import (
	"fmt"

	"cartcc/internal/cart"
	"cartcc/internal/datatype"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// Two-phase halo exchange — the "combined schedule" the paper sketches in
// Section 3.4: for the stencil pattern of Figure 1 the corner blocks
// overlap the row/column blocks, so the plain alltoall schedule sends the
// corner data twice (once inside the row/column, once as its own block
// forwarded over two hops). Combining an irregular alltoall for the
// rows/columns with forwarding for the corners removes the duplication.
//
// The classic realization is dimension-by-dimension exchange with widened
// strips: first exchange the side strips (dimension 1), then exchange the
// top/bottom strips *including the side halos just received* (dimension
// 0). Corners then arrive via two forwarding hops inside data that had to
// travel anyway; no diagonal message and no duplicated corner bytes.
// Rounds match the message-combining Moore schedule (C = 2d for the
// 3^d-point stencil); per-exchange element volume drops from
// 2h(nx+ny) + 2·4h² to 2h(nx+ny) + 4h².

// TwoPhaseExchanger2D is the combined-schedule halo exchanger for 2-D
// grids. It is a drop-in alternative to Exchanger2D with corners=true.
type TwoPhaseExchanger2D struct {
	comm     *cart.Comm // the dimension-0 communicator (owns the grid)
	colComm  *cart.Comm
	colPlan  *cart.Plan // phase 1: left/right interior strips
	rowPlan  *cart.Plan // phase 2: widened top/bottom strips
	elemsCol int
	elemsRow int
}

// Comm returns the Cartesian communicator of the exchanger (dimension-0
// neighborhood).
func (e *TwoPhaseExchanger2D) Comm() *cart.Comm { return e.comm }

// VolumeElements returns the elements sent per process per exchange —
// the quantity the Section 3.4 optimization reduces.
func (e *TwoPhaseExchanger2D) VolumeElements() int { return e.elemsCol + e.elemsRow }

// NewTwoPhaseExchanger2D builds the combined-schedule exchanger for g over
// the process torus procDims.
func NewTwoPhaseExchanger2D[T any](base *mpi.Comm, procDims []int, g *Grid2D[T], algo cart.Algorithm) (*TwoPhaseExchanger2D, error) {
	if len(procDims) != 2 {
		return nil, fmt.Errorf("stencil: 2-D exchanger needs 2 process dimensions, got %v", procDims)
	}
	if g.Halo < 1 {
		return nil, fmt.Errorf("stencil: halo exchange needs halo >= 1")
	}
	h := g.Halo

	// Phase 1: columns (dimension 1). Interior strips only: nx rows × h.
	colNbh := vec.Neighborhood{{0, -1}, {0, 1}}
	colSend := []datatype.Layout{
		strip2D(g, 0, g.NX, 0, h),         // left interior strip to (0,-1)
		strip2D(g, 0, g.NX, g.NY-h, g.NY), // right interior strip to (0,1)
	}
	colRecv := []datatype.Layout{
		strip2D(g, 0, g.NX, g.NY, g.NY+h), // from (0,1) side: right halo
		strip2D(g, 0, g.NX, -h, 0),        // left halo
	}
	colComm, err := cart.NeighborhoodCreate(base, procDims, nil, colNbh, nil, cart.WithAlgorithm(algo))
	if err != nil {
		return nil, err
	}
	colPlan, err := cart.AlltoallwInit(colComm, colSend, colRecv, algo)
	if err != nil {
		return nil, err
	}

	// Phase 2: rows (dimension 0), widened to include the side halos the
	// first phase just filled — this is what forwards the corners.
	rowNbh := vec.Neighborhood{{-1, 0}, {1, 0}}
	rowSend := []datatype.Layout{
		strip2D(g, 0, h, -h, g.NY+h),         // widened top strip to (-1,0)
		strip2D(g, g.NX-h, g.NX, -h, g.NY+h), // widened bottom strip to (1,0)
	}
	rowRecv := []datatype.Layout{
		strip2D(g, g.NX, g.NX+h, -h, g.NY+h), // from (1,0): bottom halo (widened)
		strip2D(g, -h, 0, -h, g.NY+h),        // top halo (widened)
	}
	rowComm, err := cart.NeighborhoodCreate(base, procDims, nil, rowNbh, nil, cart.WithAlgorithm(algo))
	if err != nil {
		return nil, err
	}
	rowPlan, err := cart.AlltoallwInit(rowComm, rowSend, rowRecv, algo)
	if err != nil {
		return nil, err
	}

	return &TwoPhaseExchanger2D{
		comm:     rowComm,
		colComm:  colComm,
		colPlan:  colPlan,
		rowPlan:  rowPlan,
		elemsCol: colSend[0].Size() + colSend[1].Size(),
		elemsRow: rowSend[0].Size() + rowSend[1].Size(),
	}, nil
}

// strip2D is the layout of rows [r0, rn) × cols [c0, cn) in interior
// coordinates (negative = halo).
func strip2D[T any](g *Grid2D[T], r0, rn, c0, cn int) datatype.Layout {
	var l datatype.Layout
	for r := r0; r < rn; r++ {
		l.Append(g.Idx(r, c0), cn-c0)
	}
	return l
}

// ExchangeTwoPhase2D runs both phases, filling g's full halo including the
// corners.
func ExchangeTwoPhase2D[T any](e *TwoPhaseExchanger2D, g *Grid2D[T]) error {
	if err := cart.Run(e.colPlan, g.Cells, g.Cells); err != nil {
		return err
	}
	return cart.Run(e.rowPlan, g.Cells, g.Cells)
}

// MooreVolumeElements2D returns the per-process element volume of the
// plain Moore (8-neighbor) combining exchange for the same grid — the
// comparison baseline for the Section 3.4 optimization: rows/columns plus
// corners forwarded over two hops (2·h² per corner).
func MooreVolumeElements2D[T any](g *Grid2D[T]) int {
	h := g.Halo
	return 2*h*g.NX + 2*h*g.NY + 4*2*h*h
}

// TwoPhaseExchanger3D is the 3-D combined-schedule exchanger: three
// dimension-by-dimension phases with progressively widened slabs, filling
// the full 26-neighbor halo (faces, edges and corners) without any
// diagonal message.
type TwoPhaseExchanger3D struct {
	comm  *cart.Comm
	plans []*cart.Plan
	elems int
}

// Comm returns the Cartesian communicator of the last phase.
func (e *TwoPhaseExchanger3D) Comm() *cart.Comm { return e.comm }

// VolumeElements returns the elements sent per process per exchange.
func (e *TwoPhaseExchanger3D) VolumeElements() int { return e.elems }

// NewTwoPhaseExchanger3D builds the three-phase exchanger for g over the
// process torus procDims.
func NewTwoPhaseExchanger3D[T any](base *mpi.Comm, procDims []int, g *Grid3D[T], algo cart.Algorithm) (*TwoPhaseExchanger3D, error) {
	if len(procDims) != 3 {
		return nil, fmt.Errorf("stencil: 3-D exchanger needs 3 process dimensions, got %v", procDims)
	}
	if g.Halo < 1 {
		return nil, fmt.Errorf("stencil: halo exchange needs halo >= 1")
	}
	h := g.Halo
	e := &TwoPhaseExchanger3D{}

	// Phase ranges per dimension: how far the slab extends in the other
	// dimensions grows as earlier phases fill their halos.
	type phase struct {
		dim        int
		xr, yr, zr [2]int // extents of the slab in the non-dim axes
	}
	phases := []phase{
		{dim: 2, xr: [2]int{0, g.NX}, yr: [2]int{0, g.NY}},
		{dim: 1, xr: [2]int{0, g.NX}, zr: [2]int{-h, g.NZ + h}},
		{dim: 0, yr: [2]int{-h, g.NY + h}, zr: [2]int{-h, g.NZ + h}},
	}
	for _, ph := range phases {
		var nbh vec.Neighborhood
		var sendL, recvL []datatype.Layout
		for _, dir := range []int{-1, 1} {
			rel := make(vec.Vec, 3)
			rel[ph.dim] = dir
			nbh = append(nbh, rel)
			sendL = append(sendL, slab3D(g, ph.dim, dir, true, ph.xr, ph.yr, ph.zr))
			recvL = append(recvL, slab3D(g, ph.dim, -dir, false, ph.xr, ph.yr, ph.zr))
		}
		c, err := cart.NeighborhoodCreate(base, procDims, nil, nbh, nil, cart.WithAlgorithm(algo))
		if err != nil {
			return nil, err
		}
		plan, err := cart.AlltoallwInit(c, sendL, recvL, algo)
		if err != nil {
			return nil, err
		}
		e.comm = c
		e.plans = append(e.plans, plan)
		e.elems += sendL[0].Size() + sendL[1].Size()
	}
	return e, nil
}

// slab3D builds the layout of a halo-depth slab on the dir side of
// dimension dim, bounded by the given ranges in the other dimensions
// (zero-valued ranges default to the dimension's interior).
func slab3D[T any](g *Grid3D[T], dim, dir int, send bool, xr, yr, zr [2]int) datatype.Layout {
	ranges := [3][2]int{xr, yr, zr}
	dims := [3]int{g.NX, g.NY, g.NZ}
	for i := range ranges {
		if ranges[i] == ([2]int{}) {
			ranges[i] = [2]int{0, dims[i]}
		}
	}
	lo, hi := sideRange(dir, dims[dim], g.Halo, send)
	ranges[dim] = [2]int{lo, hi}
	var l datatype.Layout
	for x := ranges[0][0]; x < ranges[0][1]; x++ {
		for y := ranges[1][0]; y < ranges[1][1]; y++ {
			l.Append(g.Idx(x, y, ranges[2][0]), ranges[2][1]-ranges[2][0])
		}
	}
	return l
}

// ExchangeTwoPhase3D runs all three phases, filling g's full halo.
func ExchangeTwoPhase3D[T any](e *TwoPhaseExchanger3D, g *Grid3D[T]) error {
	for _, p := range e.plans {
		if err := cart.Run(p, g.Cells, g.Cells); err != nil {
			return err
		}
	}
	return nil
}

// MooreVolumeElements3D returns the per-process element volume of the
// plain 26-neighbor combining exchange for the same grid: faces once,
// edges twice, corners three times (one copy per hop).
func MooreVolumeElements3D[T any](g *Grid3D[T]) int {
	h := g.Halo
	faces := 2 * (g.NX*g.NY + g.NY*g.NZ + g.NX*g.NZ) * h
	edges := 4 * (g.NX + g.NY + g.NZ) * h * h * 2
	corners := 8 * h * h * h * 3
	return faces + edges + corners
}
