package stencil

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
)

func runWorld(t *testing.T, p int, f func(c *mpi.Comm) error) {
	t.Helper()
	if err := mpi.Run(mpi.Config{Procs: p, Timeout: 30 * time.Second}, f); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2DIndexing(t *testing.T) {
	g, err := NewGrid2D[float64](3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stride() != 8 {
		t.Errorf("stride = %d", g.Stride())
	}
	if len(g.Cells) != 7*8 {
		t.Errorf("cells = %d", len(g.Cells))
	}
	g.Set(-2, -2, 1) // first halo cell
	if g.Cells[0] != 1 {
		t.Error("halo corner not at index 0")
	}
	g.Set(2, 3, 9) // last interior cell
	if g.At(2, 3) != 9 {
		t.Error("interior round trip")
	}
	if _, err := NewGrid2D[float64](0, 1, 1); err == nil {
		t.Error("zero-size grid accepted")
	}
}

func TestGrid3DIndexing(t *testing.T) {
	g, err := NewGrid3D[int](2, 3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 4*5*6 {
		t.Errorf("cells = %d", len(g.Cells))
	}
	g.Set(-1, -1, -1, 7)
	if g.Cells[0] != 7 {
		t.Error("halo corner not at index 0")
	}
	g.Set(1, 2, 3, 5)
	if g.At(1, 2, 3) != 5 {
		t.Error("interior round trip")
	}
}

func TestDecompose(t *testing.T) {
	if n, err := Decompose(12, 3); err != nil || n != 4 {
		t.Errorf("Decompose = %d, %v", n, err)
	}
	if _, err := Decompose(10, 3); err == nil {
		t.Error("uneven decomposition accepted")
	}
	if _, err := Decompose(0, 3); err == nil {
		t.Error("zero extent accepted")
	}
}

// serialJacobi9 runs iters steps of the 9-point kernel on the full
// periodic global grid.
func serialJacobi9(global [][]float64, iters int) [][]float64 {
	n := len(global)
	m := len(global[0])
	cur := global
	for it := 0; it < iters; it++ {
		next := make([][]float64, n)
		for i := range next {
			next[i] = make([]float64, m)
			for j := range next[i] {
				at := func(di, dj int) float64 {
					return cur[((i+di)%n+n)%n][((j+dj)%m+m)%m]
				}
				edge := at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1)
				corner := at(-1, -1) + at(-1, 1) + at(1, -1) + at(1, 1)
				next[i][j] = (4*edge + corner) / 20
			}
		}
		cur = next
	}
	return cur
}

func TestDistributedJacobi9MatchesSerial(t *testing.T) {
	const (
		procRows, procCols = 2, 3
		nx, ny             = 4, 5 // local interior
		iters              = 4
	)
	globalRows, globalCols := procRows*nx, procCols*ny
	// Deterministic global initial condition.
	initial := make([][]float64, globalRows)
	rng := rand.New(rand.NewSource(13))
	for i := range initial {
		initial[i] = make([]float64, globalCols)
		for j := range initial[i] {
			initial[i][j] = rng.Float64()
		}
	}
	want := serialJacobi9(initial, iters)

	for _, algo := range []cart.Algorithm{cart.Trivial, cart.Combining} {
		algo := algo
		runWorld(t, procRows*procCols, func(w *mpi.Comm) error {
			src, err := NewGrid2D[float64](nx, ny, 1)
			if err != nil {
				return err
			}
			dst, _ := NewGrid2D[float64](nx, ny, 1)
			ex, err := NewExchanger2D(w, []int{procRows, procCols}, src, true, algo)
			if err != nil {
				return err
			}
			coords := ex.Comm().Coords()
			for i := 0; i < nx; i++ {
				for j := 0; j < ny; j++ {
					src.Set(i, j, initial[coords[0]*nx+i][coords[1]*ny+j])
				}
			}
			for it := 0; it < iters; it++ {
				if err := ExchangeGrid2D(ex, src); err != nil {
					return err
				}
				Jacobi9(dst, src)
				src, dst = dst, src
			}
			for i := 0; i < nx; i++ {
				for j := 0; j < ny; j++ {
					got := src.At(i, j)
					exp := want[coords[0]*nx+i][coords[1]*ny+j]
					if math.Abs(got-exp) > 1e-12 {
						return fmt.Errorf("algo %v coords %v cell (%d,%d): %v != %v", algo, coords, i, j, got, exp)
					}
				}
			}
			return nil
		})
	}
}

func TestExchanger2DFaceOnly(t *testing.T) {
	// Without corners: 4 neighbors, halo faces filled, corners untouched.
	runWorld(t, 4, func(w *mpi.Comm) error {
		g, err := NewGrid2D[float64](2, 2, 1)
		if err != nil {
			return err
		}
		ex, err := NewExchanger2D(w, []int{2, 2}, g, false, cart.Combining)
		if err != nil {
			return err
		}
		if ex.Comm().NeighborCount() != 4 {
			return fmt.Errorf("neighbors = %d", ex.Comm().NeighborCount())
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				g.Set(i, j, float64(w.Rank()+1))
			}
		}
		// Mark halo.
		g.Set(-1, -1, -99)
		if err := ExchangeGrid2D(ex, g); err != nil {
			return err
		}
		if g.At(-1, -1) != -99 {
			return fmt.Errorf("corner halo written by face-only exchange")
		}
		if g.At(-1, 0) == 0 {
			return fmt.Errorf("face halo not filled")
		}
		return nil
	})
}

// serialHeat27 advances the full periodic 3-D global grid.
func serialHeat27(global [][][]float64, r float64, iters int) [][][]float64 {
	nx, ny, nz := len(global), len(global[0]), len(global[0][0])
	cur := global
	for it := 0; it < iters; it++ {
		next := make([][][]float64, nx)
		for i := range next {
			next[i] = make([][]float64, ny)
			for j := range next[i] {
				next[i][j] = make([]float64, nz)
				for k := range next[i][j] {
					at := func(dx, dy, dz int) float64 {
						return cur[((i+dx)%nx+nx)%nx][((j+dy)%ny+ny)%ny][((k+dz)%nz+nz)%nz]
					}
					var faces, edges, corners float64
					for dx := -1; dx <= 1; dx++ {
						for dy := -1; dy <= 1; dy++ {
							for dz := -1; dz <= 1; dz++ {
								switch abs(dx) + abs(dy) + abs(dz) {
								case 1:
									faces += at(dx, dy, dz)
								case 2:
									edges += at(dx, dy, dz)
								case 3:
									corners += at(dx, dy, dz)
								}
							}
						}
					}
					lap := faces + edges/2 + corners/3 - (6+6+8.0/3)*at(0, 0, 0)
					next[i][j][k] = at(0, 0, 0) + r*lap
				}
			}
		}
		cur = next
	}
	return cur
}

func TestDistributedHeat27MatchesSerial(t *testing.T) {
	const (
		px, py, pz = 2, 2, 2
		nx, ny, nz = 2, 3, 2
		iters      = 3
		r          = 0.01
	)
	gx, gy, gz := px*nx, py*ny, pz*nz
	rng := rand.New(rand.NewSource(17))
	initial := make([][][]float64, gx)
	for i := range initial {
		initial[i] = make([][]float64, gy)
		for j := range initial[i] {
			initial[i][j] = make([]float64, gz)
			for k := range initial[i][j] {
				initial[i][j][k] = rng.Float64()
			}
		}
	}
	want := serialHeat27(initial, r, iters)

	runWorld(t, px*py*pz, func(w *mpi.Comm) error {
		src, err := NewGrid3D[float64](nx, ny, nz, 1)
		if err != nil {
			return err
		}
		dst, _ := NewGrid3D[float64](nx, ny, nz, 1)
		ex, err := NewExchanger3D(w, []int{px, py, pz}, src, true, cart.Combining)
		if err != nil {
			return err
		}
		if ex.Comm().NeighborCount() != 26 {
			return fmt.Errorf("neighbors = %d", ex.Comm().NeighborCount())
		}
		coords := ex.Comm().Coords()
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				for k := 0; k < nz; k++ {
					src.Set(i, j, k, initial[coords[0]*nx+i][coords[1]*ny+j][coords[2]*nz+k])
				}
			}
		}
		for it := 0; it < iters; it++ {
			if err := ExchangeGrid3D(ex, src); err != nil {
				return err
			}
			Heat27(dst, src, r)
			src, dst = dst, src
		}
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				for k := 0; k < nz; k++ {
					got := src.At(i, j, k)
					exp := want[coords[0]*nx+i][coords[1]*ny+j][coords[2]*nz+k]
					if math.Abs(got-exp) > 1e-12 {
						return fmt.Errorf("coords %v cell (%d,%d,%d): %v != %v", coords, i, j, k, got, exp)
					}
				}
			}
		}
		return nil
	})
}

func TestLifeBlinker(t *testing.T) {
	// A vertical blinker spanning a process boundary must oscillate
	// correctly — the classic correctness test for distributed Life.
	const (
		procRows, procCols = 2, 1
		nx, ny             = 3, 6
	)
	runWorld(t, 2, func(w *mpi.Comm) error {
		src, err := NewGrid2D[uint8](nx, ny, 1)
		if err != nil {
			return err
		}
		dst, _ := NewGrid2D[uint8](nx, ny, 1)
		ex, err := NewExchanger2D(w, []int{procRows, procCols}, src, true, cart.Combining)
		if err != nil {
			return err
		}
		coords := ex.Comm().Coords()
		// Global blinker: cells (2,2), (3,2), (4,2) — crosses the row
		// boundary between rank (0) rows 0..2 and rank (1) rows 3..5.
		set := func(gr, gc int, v uint8) {
			lr := gr - coords[0]*nx
			if lr >= 0 && lr < nx {
				src.Set(lr, gc, v)
			}
		}
		set(2, 2, 1)
		set(3, 2, 1)
		set(4, 2, 1)
		for step := 0; step < 2; step++ {
			if err := ExchangeGrid2D(ex, src); err != nil {
				return err
			}
			Life(dst, src)
			src, dst = dst, src
			// After odd steps the blinker is horizontal at global row 3.
			alive := map[[2]int]bool{}
			for i := 0; i < nx; i++ {
				for j := 0; j < ny; j++ {
					if src.At(i, j) == 1 {
						alive[[2]int{coords[0]*nx + i, j}] = true
					}
				}
			}
			var want map[[2]int]bool
			if step%2 == 0 {
				want = map[[2]int]bool{{3, 1}: true, {3, 2}: true, {3, 3}: true}
			} else {
				want = map[[2]int]bool{{2, 2}: true, {3, 2}: true, {4, 2}: true}
			}
			for cell := range want {
				lr := cell[0] - coords[0]*nx
				if lr < 0 || lr >= nx {
					continue
				}
				if !alive[cell] {
					return fmt.Errorf("step %d rank %d: cell %v dead; alive=%v", step, w.Rank(), cell, alive)
				}
			}
			for cell := range alive {
				if !want[cell] {
					return fmt.Errorf("step %d rank %d: unexpected live cell %v", step, w.Rank(), cell)
				}
			}
		}
		return nil
	})
}

func TestExchangerValidation(t *testing.T) {
	runWorld(t, 4, func(w *mpi.Comm) error {
		g, _ := NewGrid2D[float64](2, 2, 0)
		if _, err := NewExchanger2D(w, []int{2, 2}, g, true, cart.Trivial); err == nil {
			return fmt.Errorf("halo 0 accepted")
		}
		g1, _ := NewGrid2D[float64](2, 2, 1)
		if _, err := NewExchanger2D(w, []int{4}, g1, true, cart.Trivial); err == nil {
			return fmt.Errorf("1-D process dims accepted by 2-D exchanger")
		}
		g3, _ := NewGrid3D[float64](2, 2, 2, 1)
		if _, err := NewExchanger3D(w, []int{2, 2}, g3, true, cart.Trivial); err == nil {
			return fmt.Errorf("2-D process dims accepted by 3-D exchanger")
		}
		return nil
	})
}

func TestDeepHaloExchange(t *testing.T) {
	// Halo depth 2 with radius-1 process neighborhood: strips of thickness
	// 2 move to immediate neighbors (higher-order stencil support).
	runWorld(t, 4, func(w *mpi.Comm) error {
		g, err := NewGrid2D[float64](4, 4, 2)
		if err != nil {
			return err
		}
		ex, err := NewExchanger2D(w, []int{2, 2}, g, true, cart.Combining)
		if err != nil {
			return err
		}
		coords := ex.Comm().Coords()
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				g.Set(i, j, float64(encode2(coords[0]*4+i, coords[1]*4+j)))
			}
		}
		if err := ExchangeGrid2D(ex, g); err != nil {
			return err
		}
		// Every halo cell mirrors the torus-wrapped global cell.
		for i := -2; i < 6; i++ {
			for j := -2; j < 6; j++ {
				gi := ((coords[0]*4+i)%8 + 8) % 8
				gj := ((coords[1]*4+j)%8 + 8) % 8
				if got := g.At(i, j); got != float64(encode2(gi, gj)) {
					return fmt.Errorf("coords %v halo (%d,%d) = %v, want %v", coords, i, j, got, encode2(gi, gj))
				}
			}
		}
		return nil
	})
}

func encode2(i, j int) int { return i*1000 + j }

func TestHeat7MatchesSerial(t *testing.T) {
	const (
		px, py, pz = 2, 1, 2
		nx, ny, nz = 2, 4, 2
		iters      = 3
		r          = 0.05
	)
	gx, gy, gz := px*nx, py*ny, pz*nz
	rng := rand.New(rand.NewSource(23))
	initial := make([][][]float64, gx)
	for i := range initial {
		initial[i] = make([][]float64, gy)
		for j := range initial[i] {
			initial[i][j] = make([]float64, gz)
			for k := range initial[i][j] {
				initial[i][j][k] = rng.Float64()
			}
		}
	}
	// Serial 7-point reference.
	ref := initial
	for it := 0; it < iters; it++ {
		next := make([][][]float64, gx)
		for i := range next {
			next[i] = make([][]float64, gy)
			for j := range next[i] {
				next[i][j] = make([]float64, gz)
				for k := range next[i][j] {
					at := func(dx, dy, dz int) float64 {
						return ref[((i+dx)%gx+gx)%gx][((j+dy)%gy+gy)%gy][((k+dz)%gz+gz)%gz]
					}
					lap := at(-1, 0, 0) + at(1, 0, 0) + at(0, -1, 0) + at(0, 1, 0) + at(0, 0, -1) + at(0, 0, 1) - 6*at(0, 0, 0)
					next[i][j][k] = at(0, 0, 0) + r*lap
				}
			}
		}
		ref = next
	}

	runWorld(t, px*py*pz, func(w *mpi.Comm) error {
		src, err := NewGrid3D[float64](nx, ny, nz, 1)
		if err != nil {
			return err
		}
		dst, _ := NewGrid3D[float64](nx, ny, nz, 1)
		ex, err := NewExchanger3D(w, []int{px, py, pz}, src, false, cart.Combining)
		if err != nil {
			return err
		}
		if ex.Plan() == nil || ex.Comm() == nil {
			return fmt.Errorf("accessors nil")
		}
		coords := ex.Comm().Coords()
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				for k := 0; k < nz; k++ {
					src.Set(i, j, k, initial[coords[0]*nx+i][coords[1]*ny+j][coords[2]*nz+k])
				}
			}
		}
		for it := 0; it < iters; it++ {
			if err := ExchangeGrid3D(ex, src); err != nil {
				return err
			}
			Heat7(dst, src, r)
			src, dst = dst, src
		}
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				for k := 0; k < nz; k++ {
					got := src.At(i, j, k)
					exp := ref[coords[0]*nx+i][coords[1]*ny+j][coords[2]*nz+k]
					if math.Abs(got-exp) > 1e-12 {
						return fmt.Errorf("cell (%d,%d,%d): %v != %v", i, j, k, got, exp)
					}
				}
			}
		}
		return nil
	})
}

func TestTwoPhaseAccessors(t *testing.T) {
	runWorld(t, 4, func(w *mpi.Comm) error {
		g, _ := NewGrid2D[float64](2, 2, 1)
		ex, err := NewTwoPhaseExchanger2D(w, []int{2, 2}, g, cart.Trivial)
		if err != nil {
			return err
		}
		if ex.Comm() == nil || ex.VolumeElements() <= 0 {
			return fmt.Errorf("accessors")
		}
		g2, _ := NewExchanger2D(w, []int{2, 2}, g, true, cart.Trivial)
		if g2.Plan() == nil {
			return fmt.Errorf("plan accessor")
		}
		return nil
	})
}
