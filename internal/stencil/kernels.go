package stencil

// Stencil update kernels used by the examples. All kernels read src and
// write dst (same shape), touching only the interior; halos must have been
// exchanged beforehand.

// Jacobi5 applies the 5-point Jacobi relaxation
// dst = (N + S + E + W) / 4 on the interior of a 2-D grid.
func Jacobi5(dst, src *Grid2D[float64]) {
	for i := 0; i < src.NX; i++ {
		for j := 0; j < src.NY; j++ {
			dst.Set(i, j, 0.25*(src.At(i-1, j)+src.At(i+1, j)+src.At(i, j-1)+src.At(i, j+1)))
		}
	}
}

// Jacobi9 applies the 9-point relaxation with the classic weights
// (4·edge + corner)/20 — the computation motivating the paper's Figure 1
// communication pattern (diagonal neighbors included).
func Jacobi9(dst, src *Grid2D[float64]) {
	for i := 0; i < src.NX; i++ {
		for j := 0; j < src.NY; j++ {
			edge := src.At(i-1, j) + src.At(i+1, j) + src.At(i, j-1) + src.At(i, j+1)
			corner := src.At(i-1, j-1) + src.At(i-1, j+1) + src.At(i+1, j-1) + src.At(i+1, j+1)
			dst.Set(i, j, (4*edge+corner)/20)
		}
	}
}

// Heat7 applies one explicit Euler step of the 3-D heat equation with the
// 7-point Laplacian: dst = src + r·(Σ faces − 6·src).
func Heat7(dst, src *Grid3D[float64], r float64) {
	for i := 0; i < src.NX; i++ {
		for j := 0; j < src.NY; j++ {
			for k := 0; k < src.NZ; k++ {
				lap := src.At(i-1, j, k) + src.At(i+1, j, k) +
					src.At(i, j-1, k) + src.At(i, j+1, k) +
					src.At(i, j, k-1) + src.At(i, j, k+1) - 6*src.At(i, j, k)
				dst.Set(i, j, k, src.At(i, j, k)+r*lap)
			}
		}
	}
}

// Heat27 applies one step with the 27-point Laplacian (weights 1 for
// faces, 1/2 edges, 1/3 corners, normalized) — a 3-D stencil that needs
// the full Moore halo exchange.
func Heat27(dst, src *Grid3D[float64], r float64) {
	for i := 0; i < src.NX; i++ {
		for j := 0; j < src.NY; j++ {
			for k := 0; k < src.NZ; k++ {
				var faces, edges, corners float64
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						for dz := -1; dz <= 1; dz++ {
							nz := abs(dx) + abs(dy) + abs(dz)
							v := src.At(i+dx, j+dy, k+dz)
							switch nz {
							case 1:
								faces += v
							case 2:
								edges += v
							case 3:
								corners += v
							}
						}
					}
				}
				lap := faces + edges/2 + corners/3 - (6+12.0/2+8.0/3)*src.At(i, j, k)
				dst.Set(i, j, k, src.At(i, j, k)+r*lap)
			}
		}
	}
}

// Life applies one Game of Life step (Moore neighborhood, standard B3/S23
// rules) to the interior of a 2-D byte grid with 0 = dead, 1 = alive.
func Life(dst, src *Grid2D[uint8]) {
	for i := 0; i < src.NX; i++ {
		for j := 0; j < src.NY; j++ {
			alive := 0
			for di := -1; di <= 1; di++ {
				for dj := -1; dj <= 1; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					alive += int(src.At(i+di, j+dj))
				}
			}
			var next uint8
			if src.At(i, j) == 1 {
				if alive == 2 || alive == 3 {
					next = 1
				}
			} else if alive == 3 {
				next = 1
			}
			dst.Set(i, j, next)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
