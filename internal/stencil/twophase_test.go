package stencil

import (
	"fmt"
	"testing"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
)

func TestTwoPhaseExchange2DMatchesMoore(t *testing.T) {
	// The combined schedule must fill exactly the same halo (including
	// corners) as the plain 8-neighbor Moore exchange.
	const (
		procRows, procCols = 2, 3
		nx, ny             = 4, 3
	)
	for _, halo := range []int{1, 2} {
		halo := halo
		runWorld(t, procRows*procCols, func(w *mpi.Comm) error {
			mk := func() (*Grid2D[float64], error) {
				g, err := NewGrid2D[float64](nx, ny, halo)
				if err != nil {
					return nil, err
				}
				return g, nil
			}
			a, err := mk()
			if err != nil {
				return err
			}
			b, _ := mk()
			moore, err := NewExchanger2D(w, []int{procRows, procCols}, a, true, cart.Combining)
			if err != nil {
				return err
			}
			two, err := NewTwoPhaseExchanger2D(w, []int{procRows, procCols}, b, cart.Combining)
			if err != nil {
				return err
			}
			coords := moore.Comm().Coords()
			for i := 0; i < nx; i++ {
				for j := 0; j < ny; j++ {
					v := float64((coords[0]*nx+i)*1000 + coords[1]*ny + j)
					a.Set(i, j, v)
					b.Set(i, j, v)
				}
			}
			if err := ExchangeGrid2D(moore, a); err != nil {
				return err
			}
			if err := ExchangeTwoPhase2D(two, b); err != nil {
				return err
			}
			for i := -halo; i < nx+halo; i++ {
				for j := -halo; j < ny+halo; j++ {
					if a.At(i, j) != b.At(i, j) {
						return fmt.Errorf("halo %d coords %v cell (%d,%d): moore %v, two-phase %v",
							halo, coords, i, j, a.At(i, j), b.At(i, j))
					}
				}
			}
			return nil
		})
	}
}

func TestTwoPhaseVolumeSavesCornerBytes(t *testing.T) {
	runWorld(t, 4, func(w *mpi.Comm) error {
		g, err := NewGrid2D[float64](8, 8, 2)
		if err != nil {
			return err
		}
		two, err := NewTwoPhaseExchanger2D(w, []int{2, 2}, g, cart.Combining)
		if err != nil {
			return err
		}
		moore := MooreVolumeElements2D(g)
		got := two.VolumeElements()
		// Moore: 2h(nx+ny) + 8h² = 2·2·16 + 32 = 96;
		// two-phase: 2h·nx + 2h(ny+2h) = 32 + 48 = 80.
		if moore != 96 || got != 80 {
			return fmt.Errorf("volumes: moore %d (want 96), two-phase %d (want 80)", moore, got)
		}
		if got >= moore {
			return fmt.Errorf("two-phase exchange did not reduce volume: %d >= %d", got, moore)
		}
		return nil
	})
}

func TestTwoPhaseExchange3DMatchesMoore(t *testing.T) {
	const (
		px, py, pz = 2, 2, 2
		nx, ny, nz = 3, 2, 4
	)
	runWorld(t, px*py*pz, func(w *mpi.Comm) error {
		a, err := NewGrid3D[float64](nx, ny, nz, 1)
		if err != nil {
			return err
		}
		b, _ := NewGrid3D[float64](nx, ny, nz, 1)
		moore, err := NewExchanger3D(w, []int{px, py, pz}, a, true, cart.Combining)
		if err != nil {
			return err
		}
		two, err := NewTwoPhaseExchanger3D(w, []int{px, py, pz}, b, cart.Combining)
		if err != nil {
			return err
		}
		coords := moore.Comm().Coords()
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				for k := 0; k < nz; k++ {
					v := float64((coords[0]*nx+i)*10000 + (coords[1]*ny+j)*100 + coords[2]*nz + k)
					a.Set(i, j, k, v)
					b.Set(i, j, k, v)
				}
			}
		}
		if err := ExchangeGrid3D(moore, a); err != nil {
			return err
		}
		if err := ExchangeTwoPhase3D(two, b); err != nil {
			return err
		}
		for i := -1; i < nx+1; i++ {
			for j := -1; j < ny+1; j++ {
				for k := -1; k < nz+1; k++ {
					if a.At(i, j, k) != b.At(i, j, k) {
						return fmt.Errorf("coords %v cell (%d,%d,%d): moore %v, two-phase %v",
							coords, i, j, k, a.At(i, j, k), b.At(i, j, k))
					}
				}
			}
		}
		// The Section 3.4 volume claim: edges and corners stop being
		// duplicated.
		if two.VolumeElements() >= MooreVolumeElements3D(b) {
			return fmt.Errorf("3-D two-phase volume %d not below moore %d",
				two.VolumeElements(), MooreVolumeElements3D(b))
		}
		return nil
	})
}

func TestTwoPhaseJacobi9EndToEnd(t *testing.T) {
	// The combined-schedule exchange must drive the 9-point kernel to the
	// same result as the Moore exchange over several iterations.
	const (
		procRows, procCols = 2, 2
		nx, ny             = 4, 4
		iters              = 5
	)
	runWorld(t, 4, func(w *mpi.Comm) error {
		src1, _ := NewGrid2D[float64](nx, ny, 1)
		dst1, _ := NewGrid2D[float64](nx, ny, 1)
		src2, _ := NewGrid2D[float64](nx, ny, 1)
		dst2, _ := NewGrid2D[float64](nx, ny, 1)
		moore, err := NewExchanger2D(w, []int{procRows, procCols}, src1, true, cart.Combining)
		if err != nil {
			return err
		}
		two, err := NewTwoPhaseExchanger2D(w, []int{procRows, procCols}, src2, cart.Combining)
		if err != nil {
			return err
		}
		coords := moore.Comm().Coords()
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				v := float64((coords[0]*nx+i)*31 + (coords[1]*ny+j)*7)
				src1.Set(i, j, v)
				src2.Set(i, j, v)
			}
		}
		for it := 0; it < iters; it++ {
			if err := ExchangeGrid2D(moore, src1); err != nil {
				return err
			}
			Jacobi9(dst1, src1)
			src1, dst1 = dst1, src1
			if err := ExchangeTwoPhase2D(two, src2); err != nil {
				return err
			}
			Jacobi9(dst2, src2)
			src2, dst2 = dst2, src2
		}
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				if src1.At(i, j) != src2.At(i, j) {
					return fmt.Errorf("cell (%d,%d): %v vs %v", i, j, src1.At(i, j), src2.At(i, j))
				}
			}
		}
		return nil
	})
}

func TestTwoPhaseValidation(t *testing.T) {
	runWorld(t, 4, func(w *mpi.Comm) error {
		g0, _ := NewGrid2D[float64](2, 2, 0)
		if _, err := NewTwoPhaseExchanger2D(w, []int{2, 2}, g0, cart.Trivial); err == nil {
			return fmt.Errorf("halo 0 accepted")
		}
		g, _ := NewGrid2D[float64](2, 2, 1)
		if _, err := NewTwoPhaseExchanger2D(w, []int{4}, g, cart.Trivial); err == nil {
			return fmt.Errorf("wrong dims accepted")
		}
		g3, _ := NewGrid3D[float64](2, 2, 2, 1)
		if _, err := NewTwoPhaseExchanger3D(w, []int{2, 2}, g3, cart.Trivial); err == nil {
			return fmt.Errorf("wrong 3-D dims accepted")
		}
		return nil
	})
}
