package stencil

import (
	"fmt"
	"math"
	"testing"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
)

// serialJacobi5Dirichlet runs the 5-point kernel on a global grid with
// fixed (Dirichlet) zero boundaries.
func serialJacobi5Dirichlet(g [][]float64, iters int) [][]float64 {
	n, m := len(g), len(g[0])
	cur := g
	for it := 0; it < iters; it++ {
		next := make([][]float64, n)
		for i := range next {
			next[i] = make([]float64, m)
			for j := range next[i] {
				at := func(di, dj int) float64 {
					r, c := i+di, j+dj
					if r < 0 || r >= n || c < 0 || c >= m {
						return 0 // fixed zero boundary
					}
					return cur[r][c]
				}
				next[i][j] = 0.25 * (at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1))
			}
		}
		cur = next
	}
	return cur
}

// TestMeshJacobi5MatchesSerialDirichlet runs a distributed 5-point Jacobi
// on a non-periodic mesh: halos at physical boundaries stay zero (the
// boundary condition), and every algorithm variant must agree with the
// serial Dirichlet computation.
func TestMeshJacobi5MatchesSerialDirichlet(t *testing.T) {
	const (
		procRows, procCols = 2, 3
		nx, ny             = 3, 4
		iters              = 4
	)
	globalR, globalC := procRows*nx, procCols*ny
	initial := make([][]float64, globalR)
	for i := range initial {
		initial[i] = make([]float64, globalC)
		for j := range initial[i] {
			initial[i][j] = float64((i*31+j*17)%23) / 23
		}
	}
	want := serialJacobi5Dirichlet(initial, iters)

	for _, algo := range []cart.Algorithm{cart.Trivial, cart.Combining, cart.Auto} {
		algo := algo
		runWorld(t, procRows*procCols, func(w *mpi.Comm) error {
			src, err := NewGrid2D[float64](nx, ny, 1)
			if err != nil {
				return err
			}
			dst, _ := NewGrid2D[float64](nx, ny, 1)
			ex, err := NewExchanger2DOn(w, []int{procRows, procCols}, []bool{false, false}, src, false, algo)
			if err != nil {
				return err
			}
			coords := ex.Comm().Coords()
			for i := 0; i < nx; i++ {
				for j := 0; j < ny; j++ {
					src.Set(i, j, initial[coords[0]*nx+i][coords[1]*ny+j])
				}
			}
			for it := 0; it < iters; it++ {
				// Halos at physical boundaries remain zero: the exchanger
				// never writes them on a mesh, and they start zeroed.
				if err := ExchangeGrid2D(ex, src); err != nil {
					return err
				}
				Jacobi5(dst, src)
				src, dst = dst, src
			}
			for i := 0; i < nx; i++ {
				for j := 0; j < ny; j++ {
					got := src.At(i, j)
					exp := want[coords[0]*nx+i][coords[1]*ny+j]
					if math.Abs(got-exp) > 1e-12 {
						return fmt.Errorf("algo %v coords %v cell (%d,%d): %v != %v", algo, coords, i, j, got, exp)
					}
				}
			}
			return nil
		})
	}
}

// TestMesh3DExchangeBoundary checks that a 3-D mesh exchange fills only
// interior-adjacent halos.
func TestMesh3DExchangeBoundary(t *testing.T) {
	runWorld(t, 8, func(w *mpi.Comm) error {
		g, err := NewGrid3D[float64](2, 2, 2, 1)
		if err != nil {
			return err
		}
		ex, err := NewExchanger3DOn(w, []int{2, 2, 2}, []bool{false, false, false}, g, false, cart.Trivial)
		if err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				for k := 0; k < 2; k++ {
					g.Set(i, j, k, float64(w.Rank()+1))
				}
			}
		}
		if err := ExchangeGrid3D(ex, g); err != nil {
			return err
		}
		coords := ex.Comm().Coords()
		// The -x face halo: filled iff there is a process below in dim 0.
		if coords[0] == 0 {
			if g.At(-1, 0, 0) != 0 {
				return fmt.Errorf("boundary halo written: %v", g.At(-1, 0, 0))
			}
		} else if g.At(-1, 0, 0) == 0 {
			return fmt.Errorf("interior halo not filled")
		}
		return nil
	})
}
