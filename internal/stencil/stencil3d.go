package stencil

import (
	"fmt"

	"cartcc/internal/cart"
	"cartcc/internal/datatype"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// Grid3D is one process's block of a distributed 3-D grid: an NX×NY×NZ
// interior with a halo of depth Halo, stored x-major (z fastest).
type Grid3D[T any] struct {
	NX, NY, NZ int
	Halo       int
	Cells      []T
}

// NewGrid3D allocates a zeroed local block.
func NewGrid3D[T any](nx, ny, nz, halo int) (*Grid3D[T], error) {
	if nx <= 0 || ny <= 0 || nz <= 0 || halo < 0 {
		return nil, fmt.Errorf("stencil: invalid grid %dx%dx%d halo %d", nx, ny, nz, halo)
	}
	ax, ay, az := nx+2*halo, ny+2*halo, nz+2*halo
	return &Grid3D[T]{NX: nx, NY: ny, NZ: nz, Halo: halo, Cells: make([]T, ax*ay*az)}, nil
}

// Idx returns the Cells index of interior coordinate (i, j, k), each in
// [-Halo, N*+Halo).
func (g *Grid3D[T]) Idx(i, j, k int) int {
	ay, az := g.NY+2*g.Halo, g.NZ+2*g.Halo
	return ((i+g.Halo)*ay+(j+g.Halo))*az + (k + g.Halo)
}

// At returns the cell at interior coordinate (i, j, k).
func (g *Grid3D[T]) At(i, j, k int) T { return g.Cells[g.Idx(i, j, k)] }

// Set stores v at interior coordinate (i, j, k).
func (g *Grid3D[T]) Set(i, j, k int, v T) { g.Cells[g.Idx(i, j, k)] = v }

// Exchanger3D performs the 26-neighbor (or 6-neighbor) halo exchange of a
// Grid3D over a 3-D process torus with one Cart_alltoallw plan.
type Exchanger3D struct {
	comm *cart.Comm
	plan *cart.Plan
}

// Comm returns the underlying Cartesian-neighborhood communicator.
func (e *Exchanger3D) Comm() *cart.Comm { return e.comm }

// Plan exposes the compiled exchange plan.
func (e *Exchanger3D) Plan() *cart.Plan { return e.plan }

// NewExchanger3D builds the exchanger over the process torus procDims.
// corners selects the full 26-neighbor Moore exchange (27-point stencils);
// without corners only the 6 face neighbors exchange (7-point stencils).
func NewExchanger3D[T any](base *mpi.Comm, procDims []int, g *Grid3D[T], corners bool, algo cart.Algorithm) (*Exchanger3D, error) {
	return NewExchanger3DOn(base, procDims, nil, g, corners, algo)
}

// NewExchanger3DOn is NewExchanger3D with explicit periodicity (see
// NewExchanger2DOn).
func NewExchanger3DOn[T any](base *mpi.Comm, procDims []int, periods []bool, g *Grid3D[T], corners bool, algo cart.Algorithm) (*Exchanger3D, error) {
	if len(procDims) != 3 {
		return nil, fmt.Errorf("stencil: 3-D exchanger needs 3 process dimensions, got %v", procDims)
	}
	if g.Halo < 1 {
		return nil, fmt.Errorf("stencil: halo exchange needs halo >= 1")
	}
	var nbh vec.Neighborhood
	var sendL, recvL []datatype.Layout
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				nz := 0
				for _, d := range []int{dx, dy, dz} {
					if d != 0 {
						nz++
					}
				}
				if !corners && nz != 1 {
					continue
				}
				nbh = append(nbh, vec.Vec{dx, dy, dz})
				sendL = append(sendL, region3D(g, dx, dy, dz, true))
				recvL = append(recvL, region3D(g, -dx, -dy, -dz, false))
			}
		}
	}
	c, err := cart.NeighborhoodCreate(base, procDims, periods, nbh, nil, cart.WithAlgorithm(algo))
	if err != nil {
		return nil, err
	}
	plan, err := cart.AlltoallwInit(c, sendL, recvL, algo)
	if err != nil {
		return nil, err
	}
	return &Exchanger3D{comm: c, plan: plan}, nil
}

// region3D describes the slab/edge/corner of depth Halo on the
// (dx, dy, dz) side, interior boundary for sends, halo for receives.
func region3D[T any](g *Grid3D[T], dx, dy, dz int, send bool) datatype.Layout {
	x0, xn := sideRange(dx, g.NX, g.Halo, send)
	y0, yn := sideRange(dy, g.NY, g.Halo, send)
	z0, zn := sideRange(dz, g.NZ, g.Halo, send)
	var l datatype.Layout
	for x := x0; x < xn; x++ {
		for y := y0; y < yn; y++ {
			l.Append(g.Idx(x, y, z0), zn-z0)
		}
	}
	return l
}

// ExchangeGrid3D fills g's halo from the neighboring processes'
// boundaries, in place.
func ExchangeGrid3D[T any](e *Exchanger3D, g *Grid3D[T]) error {
	return cart.Run(e.plan, g.Cells, g.Cells)
}
