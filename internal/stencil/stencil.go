// Package stencil is the application substrate for the examples: block
// decomposition of regular grids over a process torus, halo (ghost-cell)
// regions, and the Cartesian-collective halo exchange of the paper's
// Listing 3 — each neighbor's boundary strip or corner described by an
// element layout and exchanged in place with a single Alltoallw plan.
package stencil

import (
	"fmt"

	"cartcc/internal/cart"
	"cartcc/internal/datatype"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// Grid2D is one process's block of a distributed 2-D grid: an NX×NY
// interior surrounded by a halo of depth Halo, stored row-major in Cells
// with stride NY+2·Halo.
type Grid2D[T any] struct {
	NX, NY int
	Halo   int
	Cells  []T
}

// NewGrid2D allocates a zeroed local block.
func NewGrid2D[T any](nx, ny, halo int) (*Grid2D[T], error) {
	if nx <= 0 || ny <= 0 || halo < 0 {
		return nil, fmt.Errorf("stencil: invalid grid %dx%d halo %d", nx, ny, halo)
	}
	return &Grid2D[T]{
		NX: nx, NY: ny, Halo: halo,
		Cells: make([]T, (nx+2*halo)*(ny+2*halo)),
	}, nil
}

// Stride returns the allocated row length NY + 2·Halo.
func (g *Grid2D[T]) Stride() int { return g.NY + 2*g.Halo }

// Idx returns the Cells index of interior coordinate (i, j); i in
// [-Halo, NX+Halo), j in [-Halo, NY+Halo) — negative and overflowing
// indices address the halo.
func (g *Grid2D[T]) Idx(i, j int) int {
	return (i+g.Halo)*g.Stride() + (j + g.Halo)
}

// At returns the cell at interior coordinate (i, j).
func (g *Grid2D[T]) At(i, j int) T { return g.Cells[g.Idx(i, j)] }

// Set stores v at interior coordinate (i, j).
func (g *Grid2D[T]) Set(i, j int, v T) { g.Cells[g.Idx(i, j)] = v }

// Decompose splits a global extent evenly over parts processes. The
// Cartesian halo exchange requires identical block shapes on every
// process (the isomorphism condition covers counts too), so the extent
// must divide evenly.
func Decompose(global, parts int) (int, error) {
	if parts <= 0 || global <= 0 {
		return 0, fmt.Errorf("stencil: invalid decomposition %d over %d", global, parts)
	}
	if global%parts != 0 {
		return 0, fmt.Errorf("stencil: global extent %d not divisible by %d processes (identical local blocks are required)", global, parts)
	}
	return global / parts, nil
}

// Exchanger2D performs the halo exchange of a Grid2D over a 2-D process
// torus with the paper's Cart_alltoallw: the 8 Moore neighbors each get a
// boundary strip or corner of depth Halo, in place, in one collective.
type Exchanger2D struct {
	comm *cart.Comm
	plan *cart.Plan
}

// Comm returns the underlying Cartesian-neighborhood communicator.
func (e *Exchanger2D) Comm() *cart.Comm { return e.comm }

// Plan exposes the compiled exchange plan (for round/volume inspection).
func (e *Exchanger2D) Plan() *cart.Plan { return e.plan }

// NewExchanger2D builds the exchanger for a grid of the given shape over
// the process torus procDims (product must equal the communicator size).
// corners selects the 8-neighbor Moore exchange (9-point and wider
// stencils); without corners only the 4 von Neumann neighbors exchange
// (5-point stencils). algo picks the schedule family.
func NewExchanger2D[T any](base *mpi.Comm, procDims []int, g *Grid2D[T], corners bool, algo cart.Algorithm) (*Exchanger2D, error) {
	return NewExchanger2DOn(base, procDims, nil, g, corners, algo)
}

// NewExchanger2DOn is NewExchanger2D with explicit periodicity: mesh
// (non-periodic) dimensions leave the corresponding boundary halos
// untouched, where the application applies its physical boundary
// conditions. The combining algorithm works on meshes through the
// mesh-aware alltoall schedule.
func NewExchanger2DOn[T any](base *mpi.Comm, procDims []int, periods []bool, g *Grid2D[T], corners bool, algo cart.Algorithm) (*Exchanger2D, error) {
	if len(procDims) != 2 {
		return nil, fmt.Errorf("stencil: 2-D exchanger needs 2 process dimensions, got %v", procDims)
	}
	if g.Halo < 1 {
		return nil, fmt.Errorf("stencil: halo exchange needs halo >= 1")
	}
	var nbh vec.Neighborhood
	var sendL, recvL []datatype.Layout
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			if !corners && dr != 0 && dc != 0 {
				continue
			}
			nbh = append(nbh, vec.Vec{dr, dc})
			sendL = append(sendL, region2D(g, dr, dc, true))
			recvL = append(recvL, region2D(g, -dr, -dc, false))
		}
	}
	c, err := cart.NeighborhoodCreate(base, procDims, periods, nbh, nil, cart.WithAlgorithm(algo))
	if err != nil {
		return nil, err
	}
	plan, err := cart.AlltoallwInit(c, sendL, recvL, algo)
	if err != nil {
		return nil, err
	}
	return &Exchanger2D{comm: c, plan: plan}, nil
}

// region2D describes the strip/corner of depth Halo on the (dr, dc) side:
// the interior boundary when send is true, the halo when false.
func region2D[T any](g *Grid2D[T], dr, dc int, send bool) datatype.Layout {
	r0, rn := sideRange(dr, g.NX, g.Halo, send)
	c0, cn := sideRange(dc, g.NY, g.Halo, send)
	var l datatype.Layout
	for r := r0; r < rn; r++ {
		l.Append(g.Idx(r, c0), cn-c0)
	}
	return l
}

// sideRange returns the index range [lo, hi) along one dimension for the
// given direction: -1 the low side, +1 the high side, 0 the full interior.
// For sends the range lies in the interior boundary; for receives in the
// halo.
func sideRange(dir, n, h int, send bool) (int, int) {
	switch dir {
	case -1:
		if send {
			return 0, h
		}
		return -h, 0
	case 1:
		if send {
			return n - h, n
		}
		return n, n + h
	default:
		return 0, n
	}
}

// ExchangeGrid2D fills g's halo from the neighboring processes'
// boundaries, in place (send and receive regions are disjoint). The
// element type must match the grid the exchanger was built for.
func ExchangeGrid2D[T any](e *Exchanger2D, g *Grid2D[T]) error {
	return cart.Run(e.plan, g.Cells, g.Cells)
}
