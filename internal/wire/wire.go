// Package wire implements the compact self-describing frame format of the
// network transports: variable-length integer packing in the style of
// WiredTiger's intpack (small magnitudes cost one byte, the common case for
// ranks, tags and block counts), a fixed-layout frame header carrying the
// full MPI match envelope — (ctx, epoch, src, tag) plus the sender's
// world rank and send sequence number for duplicate suppression — and a
// registry of wire-encodable element types.
//
// The package is pure: it never touches sockets, pools or runtime state,
// so the codec can be fuzzed in isolation (FuzzFrameCodec) and every
// malformed input maps to a typed error, never a panic or an unbounded
// allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Typed decode errors. Transports and tests match these with errors.Is;
// any of them on a connection is a framing-protocol violation (or
// corruption) and tears the connection down.
var (
	// ErrTruncated reports input that ends inside a header or payload.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadMagic reports a frame that does not start with the magic byte.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadVersion reports an unsupported protocol version.
	ErrBadVersion = errors.New("wire: unsupported version")
	// ErrBadKind reports an unknown frame kind.
	ErrBadKind = errors.New("wire: unknown frame kind")
	// ErrOversize reports a length field exceeding MaxPayload (a malformed
	// or hostile frame must never drive a giant allocation).
	ErrOversize = errors.New("wire: oversized frame")
	// ErrBadElemType reports an element-type id outside the registry.
	ErrBadElemType = errors.New("wire: unknown element type")
	// ErrBadField reports a header field with an impossible value (negative
	// element count, payload length inconsistent with elems × elem size).
	ErrBadField = errors.New("wire: invalid header field")
)

// Magic and Version identify the framing protocol; a version bump is a
// wire-format break.
const (
	Magic   = 0xCC
	Version = 1
)

// MaxPayload bounds the payload bytes a single frame may carry (and
// therefore the allocation a decoder performs on behalf of a peer).
// Larger application messages are rejected at encode time; the schedule
// layer never produces them (wire buffers are pooled up to 2^24 elements).
const MaxPayload = 1 << 30

// Kind discriminates frame types on a transport connection.
type Kind uint8

const (
	// KindData carries one point-to-point message.
	KindData Kind = iota + 1
	// KindHello opens a connection: it names the dialing process.
	KindHello
	// KindBye announces a clean departure: the sending process finished its
	// local ranks and will close the connection.
	KindBye
	// KindFail propagates a fatal local failure to the peer process so its
	// world aborts with the cause instead of waiting for a timeout.
	KindFail
	// KindHandoff delivers a message that never crossed the wire: payloads
	// the element registry cannot encode (named types — see ElemIDOf) are
	// parked in the sending transport's handoff table, and only a uvarint
	// token travels the process's own loopback connection, so even a
	// non-encodable message keeps its place in the per-sender frame order.
	// Tokens are meaningful only on the self-link; a handoff from any
	// other connection is a protocol violation.
	KindHandoff
)

// validKind reports whether k names a defined frame kind.
func validKind(k Kind) bool { return k >= KindData && k <= KindHandoff }

// AppendUvarint appends the unsigned varint encoding of v.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends the zigzag varint encoding of v (small magnitudes
// of either sign stay short — tags and wildcard ranks may be negative).
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// ConsumeUvarint decodes an unsigned varint from the front of b, returning
// the value and the remaining bytes. ErrTruncated covers both an empty
// buffer and a varint whose continuation bytes run out; a varint longer
// than 10 bytes (overflow) is also truncation-class corruption.
func ConsumeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, ErrTruncated
	}
	return v, b[n:], nil
}

// ConsumeVarint decodes a zigzag varint from the front of b.
func ConsumeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, b, ErrTruncated
	}
	return v, b[n:], nil
}

// Header is the decoded frame header. For KindData every field is
// meaningful; control frames use only Proc (hello: the dialing process;
// fail: the failing process) plus an opaque payload — the failure detail
// string for KindFail, the uvarint handoff token for KindHandoff.
type Header struct {
	Kind Kind
	// Proc is the sending process index (control frames).
	Proc int
	// Dst is the destination world rank of a data frame.
	Dst int
	// Ctx, Epoch, Src, Tag are the MPI match envelope of the message.
	Ctx   int64
	Epoch int64
	Src   int
	Tag   int
	// SrcWorld and Sseq identify the physical send for the receiver's
	// per-sender duplicate suppression.
	SrcWorld int
	Sseq     uint64
	// Elem is the registered element-type id of the payload; Elems the
	// element count described by the sender's layout.
	Elem  ElemID
	Elems int
	// PayloadLen is the payload byte length that follows the header.
	PayloadLen int
}

// AppendHeader appends the encoded header to b. The caller appends
// PayloadLen payload bytes immediately after.
func AppendHeader(b []byte, h Header) ([]byte, error) {
	if h.PayloadLen < 0 || h.PayloadLen > MaxPayload {
		return b, fmt.Errorf("%w: payload %d bytes", ErrOversize, h.PayloadLen)
	}
	if !validKind(h.Kind) {
		return b, fmt.Errorf("%w: kind %d", ErrBadKind, h.Kind)
	}
	b = append(b, Magic, Version, byte(h.Kind))
	b = AppendUvarint(b, uint64(h.Proc))
	if h.Kind != KindData {
		// Control frames carry only the process id and an opaque payload.
		b = AppendUvarint(b, uint64(h.PayloadLen))
		return b, nil
	}
	b = AppendUvarint(b, uint64(h.Dst))
	b = AppendVarint(b, h.Ctx)
	b = AppendVarint(b, h.Epoch)
	b = AppendVarint(b, int64(h.Src))
	b = AppendVarint(b, int64(h.Tag))
	b = AppendUvarint(b, uint64(h.SrcWorld))
	b = AppendUvarint(b, h.Sseq)
	b = append(b, byte(h.Elem))
	b = AppendUvarint(b, uint64(h.Elems))
	b = AppendUvarint(b, uint64(h.PayloadLen))
	return b, nil
}

// DecodeHeader decodes a header from the front of b, returning it and the
// remaining bytes (the first of which is the first payload byte). It never
// reads past the header, never allocates, and returns a typed error for
// every malformed input.
func DecodeHeader(b []byte) (Header, []byte, error) {
	var h Header
	if len(b) < 3 {
		return h, b, ErrTruncated
	}
	if b[0] != Magic {
		return h, b, ErrBadMagic
	}
	if b[1] != Version {
		return h, b, fmt.Errorf("%w: %d", ErrBadVersion, b[1])
	}
	h.Kind = Kind(b[2])
	if !validKind(h.Kind) {
		return h, b, fmt.Errorf("%w: %d", ErrBadKind, b[2])
	}
	rest := b[3:]
	var err error
	var u uint64
	if u, rest, err = ConsumeUvarint(rest); err != nil {
		return h, b, err
	}
	if u > 1<<30 {
		return h, b, fmt.Errorf("%w: proc %d", ErrBadField, u)
	}
	h.Proc = int(u)
	if h.Kind != KindData {
		if u, rest, err = ConsumeUvarint(rest); err != nil {
			return h, b, err
		}
		if u > MaxPayload {
			return h, b, fmt.Errorf("%w: control payload %d bytes", ErrOversize, u)
		}
		h.PayloadLen = int(u)
		return h, rest, nil
	}
	if u, rest, err = ConsumeUvarint(rest); err != nil {
		return h, b, err
	}
	if u > 1<<30 {
		return h, b, fmt.Errorf("%w: dst rank %d", ErrBadField, u)
	}
	h.Dst = int(u)
	if h.Ctx, rest, err = ConsumeVarint(rest); err != nil {
		return h, b, err
	}
	if h.Epoch, rest, err = ConsumeVarint(rest); err != nil {
		return h, b, err
	}
	var s int64
	if s, rest, err = ConsumeVarint(rest); err != nil {
		return h, b, err
	}
	h.Src = int(s)
	if s, rest, err = ConsumeVarint(rest); err != nil {
		return h, b, err
	}
	h.Tag = int(s)
	if u, rest, err = ConsumeUvarint(rest); err != nil {
		return h, b, err
	}
	if u > 1<<30 {
		return h, b, fmt.Errorf("%w: src world rank %d", ErrBadField, u)
	}
	h.SrcWorld = int(u)
	if h.Sseq, rest, err = ConsumeUvarint(rest); err != nil {
		return h, b, err
	}
	if len(rest) < 1 {
		return h, b, ErrTruncated
	}
	h.Elem = ElemID(rest[0])
	rest = rest[1:]
	if _, ok := elemByID(h.Elem); !ok {
		return h, b, fmt.Errorf("%w: id %d", ErrBadElemType, h.Elem)
	}
	if u, rest, err = ConsumeUvarint(rest); err != nil {
		return h, b, err
	}
	if u > MaxPayload {
		return h, b, fmt.Errorf("%w: %d elements", ErrOversize, u)
	}
	h.Elems = int(u)
	if u, rest, err = ConsumeUvarint(rest); err != nil {
		return h, b, err
	}
	if u > MaxPayload {
		return h, b, fmt.Errorf("%w: payload %d bytes", ErrOversize, u)
	}
	h.PayloadLen = int(u)
	if sz, _ := ElemSize(h.Elem); h.PayloadLen != h.Elems*sz {
		return h, b, fmt.Errorf("%w: %d elements of %d bytes vs %d payload bytes",
			ErrBadField, h.Elems, sz, h.PayloadLen)
	}
	return h, rest, nil
}

// DecodeFrame decodes one full frame (header + payload) from b: the
// payload slice aliases b. A frame followed by trailing bytes returns
// them in rest, so a buffer holding several coalesced frames decodes by
// repeated calls.
func DecodeFrame(b []byte) (h Header, payload []byte, rest []byte, err error) {
	h, after, err := DecodeHeader(b)
	if err != nil {
		return h, nil, b, err
	}
	if len(after) < h.PayloadLen {
		return h, nil, b, ErrTruncated
	}
	return h, after[:h.PayloadLen], after[h.PayloadLen:], nil
}
