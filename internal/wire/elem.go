package wire

import (
	"fmt"
	"reflect"
)

// ElemID names a wire-encodable element type. The id assignment is part
// of the wire format: both ends of a connection must agree on it, so the
// registry is a fixed table of Go's plain-old-data types — no dynamic
// registration, whose ids would depend on registration order and silently
// disagree across processes.
type ElemID uint8

// The fixed element-type table. Every entry is a pointer-free type whose
// in-memory representation is its wire representation (native endianness;
// a world must not span architectures of different byte order — see
// DESIGN.md §15).
const (
	ElemInvalid ElemID = iota
	ElemInt8
	ElemInt16
	ElemInt32
	ElemInt64
	ElemUint8
	ElemUint16
	ElemUint32
	ElemUint64
	ElemFloat32
	ElemFloat64
	ElemComplex64
	ElemComplex128
	ElemBool
	ElemInt  // platform int: 8 bytes on every supported GOARCH
	ElemUint // platform uint
	elemMax
)

// elemTypes maps ids to reflect types; built once at init.
var elemTypes = [elemMax]reflect.Type{
	ElemInt8:       reflect.TypeOf(int8(0)),
	ElemInt16:      reflect.TypeOf(int16(0)),
	ElemInt32:      reflect.TypeOf(int32(0)),
	ElemInt64:      reflect.TypeOf(int64(0)),
	ElemUint8:      reflect.TypeOf(uint8(0)),
	ElemUint16:     reflect.TypeOf(uint16(0)),
	ElemUint32:     reflect.TypeOf(uint32(0)),
	ElemUint64:     reflect.TypeOf(uint64(0)),
	ElemFloat32:    reflect.TypeOf(float32(0)),
	ElemFloat64:    reflect.TypeOf(float64(0)),
	ElemComplex64:  reflect.TypeOf(complex64(0)),
	ElemComplex128: reflect.TypeOf(complex128(0)),
	ElemBool:       reflect.TypeOf(false),
	ElemInt:        reflect.TypeOf(int(0)),
	ElemUint:       reflect.TypeOf(uint(0)),
}

// elemIDs is the inverse lookup.
var elemIDs = func() map[reflect.Type]ElemID {
	m := make(map[reflect.Type]ElemID, int(elemMax))
	for id, t := range elemTypes {
		if t != nil {
			m[t] = ElemID(id)
		}
	}
	return m
}()

// elemByID returns the reflect type of a registered id.
func elemByID(id ElemID) (reflect.Type, bool) {
	if id <= ElemInvalid || id >= elemMax {
		return nil, false
	}
	return elemTypes[id], true
}

// ElemTypeOf returns the reflect type a registered id decodes to.
func ElemTypeOf(id ElemID) (reflect.Type, error) {
	t, ok := elemByID(id)
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrBadElemType, id)
	}
	return t, nil
}

// ElemIDOf returns the wire id of element type t. Named types, structs,
// and anything pointer-bearing are not wire-encodable: the id table must
// be identical in every process, so only the builtin POD types qualify.
func ElemIDOf(t reflect.Type) (ElemID, error) {
	if id, ok := elemIDs[t]; ok {
		return id, nil
	}
	return ElemInvalid, fmt.Errorf("%w: %v is not wire-encodable", ErrBadElemType, t)
}

// ElemSize returns the byte size of one element of a registered id.
func ElemSize(id ElemID) (int, bool) {
	t, ok := elemByID(id)
	if !ok {
		return 0, false
	}
	return int(t.Size()), true
}
