package wire

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// headerEqual compares the fields DecodeHeader is expected to reproduce.
func headerEqual(a, b Header) bool { return a == b }

func TestHeaderRoundTripData(t *testing.T) {
	cases := []Header{
		{Kind: KindData, Proc: 0, Dst: 0, Ctx: 0, Epoch: 0, Src: 0, Tag: 0,
			SrcWorld: 0, Sseq: 0, Elem: ElemInt64, Elems: 0, PayloadLen: 0},
		{Kind: KindData, Proc: 3, Dst: 17, Ctx: 42, Epoch: 2, Src: 5, Tag: 1048576,
			SrcWorld: 11, Sseq: 9001, Elem: ElemFloat64, Elems: 128, PayloadLen: 1024},
		// Negative envelope fields: wildcard-adjacent values and the ft-plane
		// context bit (1<<61) must survive the zigzag coding.
		{Kind: KindData, Proc: 1, Dst: 2, Ctx: 1 << 61, Epoch: -1, Src: -1, Tag: -1,
			SrcWorld: 7, Sseq: 1, Elem: ElemInt8, Elems: 3, PayloadLen: 3},
		{Kind: KindData, Proc: 0, Dst: 1, Ctx: math.MaxInt64, Epoch: math.MinInt64,
			Src: 1 << 29, Tag: 1 << 30, SrcWorld: 1 << 29, Sseq: math.MaxUint64,
			Elem: ElemComplex128, Elems: 2, PayloadLen: 32},
	}
	for i, h := range cases {
		b, err := AppendHeader(nil, h)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, rest, err := DecodeHeader(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("case %d: %d bytes left after header", i, len(rest))
		}
		if !headerEqual(got, h) {
			t.Fatalf("case %d: round trip\n got %+v\nwant %+v", i, got, h)
		}
	}
}

func TestHeaderRoundTripControl(t *testing.T) {
	for _, k := range []Kind{KindHello, KindBye, KindFail, KindHandoff} {
		h := Header{Kind: k, Proc: 7, PayloadLen: 5}
		b, err := AppendHeader(nil, h)
		if err != nil {
			t.Fatalf("kind %d: encode: %v", k, err)
		}
		got, _, err := DecodeHeader(b)
		if err != nil {
			t.Fatalf("kind %d: decode: %v", k, err)
		}
		if got.Kind != k || got.Proc != 7 || got.PayloadLen != 5 {
			t.Fatalf("kind %d: got %+v", k, got)
		}
	}
}

func TestDecodeFrameCoalesced(t *testing.T) {
	// Two frames in one buffer — the reader's coalesced case.
	h1 := Header{Kind: KindData, Proc: 0, Dst: 1, Src: 0, SrcWorld: 0, Sseq: 1,
		Elem: ElemInt32, Elems: 2, PayloadLen: 8}
	h2 := Header{Kind: KindBye, Proc: 0}
	b, err := AppendHeader(nil, h1)
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, 1, 0, 0, 0, 2, 0, 0, 0)
	if b, err = AppendHeader(b, h2); err != nil {
		t.Fatal(err)
	}
	g1, payload, rest, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != h1 || len(payload) != 8 {
		t.Fatalf("frame 1: %+v payload %d", g1, len(payload))
	}
	g2, payload2, rest, err := DecodeFrame(rest)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Kind != KindBye || len(payload2) != 0 || len(rest) != 0 {
		t.Fatalf("frame 2: %+v payload %d rest %d", g2, len(payload2), len(rest))
	}
}

// TestDecodeMalformed is the malformed-input corpus: every entry must map
// to its typed error — never a panic, never a success.
func TestDecodeMalformed(t *testing.T) {
	valid, err := AppendHeader(nil, Header{Kind: KindData, Proc: 1, Dst: 2,
		Ctx: 9, Epoch: 1, Src: 0, Tag: 3, SrcWorld: 4, Sseq: 5,
		Elem: ElemInt64, Elems: 2, PayloadLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(idx int, val byte) []byte {
		b := append([]byte(nil), valid...)
		b[idx] = val
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"magic only", []byte{Magic}, ErrTruncated},
		{"bad magic", mutate(0, 0xAB), ErrBadMagic},
		{"bad version", mutate(1, 99), ErrBadVersion},
		{"bad kind zero", mutate(2, 0), ErrBadKind},
		{"bad kind high", mutate(2, 200), ErrBadKind},
		{"truncated mid-header", valid[:5], ErrTruncated},
		{"truncated before elem", valid[:len(valid)-3], ErrTruncated},
		{"unknown elem type", func() []byte {
			b := append([]byte(nil), valid...)
			// The elem id byte is third-from-last (elems and payloadLen are
			// single-byte varints in this header).
			b[len(b)-3] = 250
			return b
		}(), ErrBadElemType},
		{"payload/elems mismatch", func() []byte {
			b := append([]byte(nil), valid...)
			b[len(b)-1] = 24 // claims 24 payload bytes for 2 int64s
			return b
		}(), ErrBadField},
		{"oversized payload length", func() []byte {
			b, _ := AppendHeader(nil, Header{Kind: KindBye, Proc: 0})
			b = b[:len(b)-1] // drop the encoded zero payloadLen...
			return AppendUvarint(b, uint64(MaxPayload)+1)
		}(), ErrOversize},
		{"truncated varint", append(append([]byte(nil), valid[:3]...),
			0x80, 0x80, 0x80), ErrTruncated},
	}
	for _, tc := range cases {
		_, _, err := DecodeHeader(tc.in)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeFramePayloadTruncated(t *testing.T) {
	b, err := AppendHeader(nil, Header{Kind: KindData, Proc: 0, Dst: 1,
		SrcWorld: 0, Elem: ElemInt32, Elems: 4, PayloadLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, 1, 2, 3) // 3 of 16 payload bytes
	if _, _, _, err := DecodeFrame(b); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestAppendHeaderRejectsBadInput(t *testing.T) {
	if _, err := AppendHeader(nil, Header{Kind: KindData, PayloadLen: MaxPayload + 1}); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize accepted: %v", err)
	}
	if _, err := AppendHeader(nil, Header{Kind: 0}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("zero kind accepted: %v", err)
	}
}

func TestElemRegistry(t *testing.T) {
	for id := ElemInvalid + 1; id < elemMax; id++ {
		rt, err := ElemTypeOf(id)
		if err != nil {
			t.Fatalf("id %d: %v", id, err)
		}
		back, err := ElemIDOf(rt)
		if err != nil || back != id {
			t.Fatalf("id %d: inverse gave %d, %v", id, back, err)
		}
		if sz, ok := ElemSize(id); !ok || sz != int(rt.Size()) {
			t.Fatalf("id %d: size %d ok=%v, want %d", id, sz, ok, rt.Size())
		}
	}
	if _, err := ElemTypeOf(ElemInvalid); err == nil {
		t.Fatal("ElemInvalid resolved")
	}
	if _, err := ElemTypeOf(elemMax); err == nil {
		t.Fatal("out-of-range id resolved")
	}
	// Named types must be rejected: the fixed table is the wire contract.
	type myInt int64
	if _, err := ElemIDOf(reflect.TypeOf(myInt(0))); !errors.Is(err, ErrBadElemType) {
		t.Fatalf("named type accepted: %v", err)
	}
	if _, err := ElemIDOf(reflect.TypeOf(struct{ A int }{})); !errors.Is(err, ErrBadElemType) {
		t.Fatalf("struct type accepted: %v", err)
	}
}

func TestVarintHelpers(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64} {
		b := AppendVarint(nil, v)
		got, rest, err := ConsumeVarint(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("varint %d: got %d rest %d err %v", v, got, len(rest), err)
		}
	}
	for _, v := range []uint64{0, 1, 127, 128, math.MaxUint64} {
		b := AppendUvarint(nil, v)
		got, rest, err := ConsumeUvarint(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("uvarint %d: got %d rest %d err %v", v, got, len(rest), err)
		}
	}
	if _, _, err := ConsumeUvarint(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty uvarint: %v", err)
	}
	// An 11-byte varint overflows uint64: truncation-class corruption.
	over := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, _, err := ConsumeUvarint(over); !errors.Is(err, ErrTruncated) {
		t.Fatalf("overflowing uvarint: %v", err)
	}
}

// FuzzFrameCodec round-trips arbitrary header fields through the codec and
// feeds arbitrary bytes to the decoder: encode(decode(encode(h))) must be
// the identity, and no input may panic or allocate beyond MaxPayload.
func FuzzFrameCodec(f *testing.F) {
	f.Add(uint8(1), uint16(0), uint16(1), int64(0), int64(0), int64(0), int64(0),
		uint16(0), uint64(1), uint8(4), uint32(8), []byte("payloadpayload99"))
	f.Add(uint8(2), uint16(3), uint16(0), int64(-1), int64(5), int64(-2), int64(9),
		uint16(2), uint64(0), uint8(1), uint32(0), []byte{})
	f.Add(uint8(4), uint16(0), uint16(0), int64(0), int64(0), int64(0), int64(0),
		uint16(0), uint64(0), uint8(0), uint32(0), []byte("process 3 died"))
	f.Fuzz(func(t *testing.T, kind uint8, proc, dst uint16, ctx, epoch, src, tag int64,
		srcWorld uint16, sseq uint64, elem uint8, elems uint32, raw []byte) {
		// Leg 1: structured round trip for inputs that encode cleanly.
		h := Header{
			Kind: Kind(kind), Proc: int(proc), Dst: int(dst),
			Ctx: ctx, Epoch: epoch, Src: int(src), Tag: int(tag),
			SrcWorld: int(srcWorld), Sseq: sseq,
			Elem: ElemID(elem), Elems: int(elems),
		}
		if sz, ok := ElemSize(h.Elem); ok {
			h.PayloadLen = h.Elems * sz
		}
		if b, err := AppendHeader(nil, h); err == nil {
			got, rest, derr := DecodeHeader(b)
			if h.Kind == KindData {
				if derr != nil {
					// Only field-bound violations may reject a clean encode.
					if !errors.Is(derr, ErrBadField) && !errors.Is(derr, ErrOversize) && !errors.Is(derr, ErrBadElemType) {
						t.Fatalf("decode of valid encode failed: %v", derr)
					}
				} else {
					if len(rest) != 0 {
						t.Fatalf("leftover %d bytes", len(rest))
					}
					if got != h {
						t.Fatalf("round trip\n got %+v\nwant %+v", got, h)
					}
				}
			}
		}
		// Leg 2: the decoder survives arbitrary bytes — typed error or valid
		// header, never a panic, and any reported payload stays bounded.
		gh, after, err := DecodeHeader(raw)
		if err == nil {
			if gh.PayloadLen < 0 || gh.PayloadLen > MaxPayload {
				t.Fatalf("decoder admitted payload length %d", gh.PayloadLen)
			}
			if len(after) > len(raw) {
				t.Fatal("decoder produced more bytes than it was given")
			}
		}
		_, _, _, _ = DecodeFrame(raw)
	})
}
