// Package vec provides d-dimensional integer coordinate vectors and the
// mixed-radix geometry of Cartesian process grids (meshes and tori).
//
// It is the arithmetic substrate underneath the Cartesian Collective
// Communication library: rank/coordinate conversion, periodic (torus) and
// bounded (mesh) wrapping, stable bucket sorting of neighborhoods by a
// chosen coordinate (the O(t)-per-phase primitive of Algorithms 1 and 2 of
// the paper), and generators for the stencil neighborhood families used in
// the paper's evaluation.
package vec

import (
	"fmt"
	"sort"
)

// Vec is a d-dimensional integer coordinate vector. A Vec is used both for
// absolute process coordinates (each component in [0, dims[i])) and for
// relative neighbor offsets (arbitrary integers, positive or negative).
type Vec []int

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Equal reports whether v and w have the same length and components.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every component of v is zero. The zero vector
// denotes the process itself in a relative neighborhood.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// NonZeros returns the number of non-zero components of v. In the paper's
// notation this is z_i, the number of hops a data block for neighbor N[i]
// travels under dimension-wise path expansion.
func (v Vec) NonZeros() int {
	z := 0
	for _, x := range v {
		if x != 0 {
			z++
		}
	}
	return z
}

// Add returns the component-wise sum v + w.
func (v Vec) Add(w Vec) Vec {
	u := make(Vec, len(v))
	for i := range v {
		u[i] = v[i] + w[i]
	}
	return u
}

// Sub returns the component-wise difference v - w.
func (v Vec) Sub(w Vec) Vec {
	u := make(Vec, len(v))
	for i := range v {
		u[i] = v[i] - w[i]
	}
	return u
}

// Neg returns the component-wise negation of v. If v is the relative offset
// of a target neighbor, Neg(v) is the offset of the matching source.
func (v Vec) Neg() Vec {
	u := make(Vec, len(v))
	for i := range v {
		u[i] = -v[i]
	}
	return u
}

// Axis returns the vector that is zero everywhere except at coordinate k,
// where it equals v[k]. In the paper's notation this is N[i]_k^0, the basis
// step taken in phase k of the message-combining schedules.
func (v Vec) Axis(k int) Vec {
	u := make(Vec, len(v))
	u[k] = v[k]
	return u
}

// String renders v as "(a,b,...)".
func (v Vec) String() string {
	s := "("
	for i, x := range v {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(x)
	}
	return s + ")"
}

// Less is a lexicographic ordering on equal-length vectors, used to bring a
// neighborhood into the canonical sorted order exchanged during the
// isomorphism check of Section 2.2 of the paper.
func (v Vec) Less(w Vec) bool {
	for i := range v {
		if v[i] != w[i] {
			return v[i] < w[i]
		}
	}
	return false
}

// SortLex sorts a list of vectors lexicographically in place.
func SortLex(vs []Vec) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Less(vs[j]) })
}

// mod returns the mathematical modulus a mod m, always in [0, m).
func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// Grid describes the geometry of a d-dimensional process mesh or torus with
// per-dimension extents Dims and periodicity flags Periods. All ranks are
// numbered in row-major order: the last dimension varies fastest, exactly as
// in MPI Cartesian topologies.
type Grid struct {
	Dims    []int
	Periods []bool
}

// NewGrid validates the dimension extents and periodicity flags and returns
// the grid geometry. Every extent must be positive and len(periods) must
// equal len(dims) (or be nil, meaning fully periodic: a torus).
func NewGrid(dims []int, periods []bool) (*Grid, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("vec: grid needs at least one dimension")
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("vec: dimension %d has non-positive extent %d", i, d)
		}
	}
	if periods == nil {
		periods = make([]bool, len(dims))
		for i := range periods {
			periods[i] = true
		}
	}
	if len(periods) != len(dims) {
		return nil, fmt.Errorf("vec: %d periodicity flags for %d dimensions", len(periods), len(dims))
	}
	g := &Grid{
		Dims:    append([]int(nil), dims...),
		Periods: append([]bool(nil), periods...),
	}
	return g, nil
}

// NDims returns the number of dimensions d of the grid.
func (g *Grid) NDims() int { return len(g.Dims) }

// Size returns the total number of processes, the product of all extents.
func (g *Grid) Size() int {
	p := 1
	for _, d := range g.Dims {
		p *= d
	}
	return p
}

// CoordOf returns the coordinate vector of the given rank (row-major,
// last dimension fastest). Rank must be in [0, Size()).
func (g *Grid) CoordOf(rank int) Vec {
	c := make(Vec, len(g.Dims))
	for i := len(g.Dims) - 1; i >= 0; i-- {
		c[i] = rank % g.Dims[i]
		rank /= g.Dims[i]
	}
	return c
}

// RankOf returns the rank of the given absolute coordinate vector. Every
// component must lie in [0, Dims[i]); use Displace to apply relative offsets
// with wrapping first.
func (g *Grid) RankOf(c Vec) (int, error) {
	if len(c) != len(g.Dims) {
		return -1, fmt.Errorf("vec: coordinate has %d components, grid has %d dimensions", len(c), len(g.Dims))
	}
	r := 0
	for i, x := range c {
		if x < 0 || x >= g.Dims[i] {
			return -1, fmt.Errorf("vec: coordinate %v out of range in dimension %d (extent %d)", c, i, g.Dims[i])
		}
		r = r*g.Dims[i] + x
	}
	return r, nil
}

// Displace applies the relative offset rel to the absolute coordinate c.
// Along periodic dimensions the result wraps modulo the extent. Along
// non-periodic (mesh) dimensions an offset that leaves the grid yields
// ok == false, mirroring MPI_PROC_NULL semantics for meshes.
func (g *Grid) Displace(c, rel Vec) (dst Vec, ok bool) {
	dst = make(Vec, len(g.Dims))
	for i := range g.Dims {
		x := c[i] + rel[i]
		if g.Periods[i] {
			x = mod(x, g.Dims[i])
		} else if x < 0 || x >= g.Dims[i] {
			return nil, false
		}
		dst[i] = x
	}
	return dst, true
}

// RankDisplace composes CoordOf, Displace and RankOf: the rank reached from
// rank by relative offset rel, with ok == false if the displacement falls
// off a non-periodic mesh.
func (g *Grid) RankDisplace(rank int, rel Vec) (int, bool) {
	dst, ok := g.Displace(g.CoordOf(rank), rel)
	if !ok {
		return -1, false
	}
	r, err := g.RankOf(dst)
	if err != nil {
		return -1, false
	}
	return r, true
}

// DimsCreate factors p into d balanced extents, largest first, in the manner
// of MPI_Dims_create: the extents multiply to exactly p and are as close to
// each other as a greedy prime-factor distribution allows.
func DimsCreate(p, d int) ([]int, error) {
	if p <= 0 || d <= 0 {
		return nil, fmt.Errorf("vec: DimsCreate requires positive p and d, got p=%d d=%d", p, d)
	}
	dims := make([]int, d)
	for i := range dims {
		dims[i] = 1
	}
	// Distribute prime factors of p, largest factor to currently smallest dim.
	factors := primeFactors(p)
	// Largest prime factors first so they land on distinct dimensions.
	sort.Sort(sort.Reverse(sort.IntSlice(factors)))
	for _, f := range factors {
		small := 0
		for i := 1; i < d; i++ {
			if dims[i] < dims[small] {
				small = i
			}
		}
		dims[small] *= f
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dims)))
	return dims, nil
}

// primeFactors returns the multiset of prime factors of p (p >= 1).
func primeFactors(p int) []int {
	var fs []int
	for f := 2; f*f <= p; f++ {
		for p%f == 0 {
			fs = append(fs, f)
			p /= f
		}
	}
	if p > 1 {
		fs = append(fs, p)
	}
	return fs
}

// BucketSortByCoord stably sorts the index set {0,...,len(ns)-1} of the
// neighborhood ns by the k-th coordinate of each vector and returns the
// permutation ("order" in Algorithm 1 of the paper). The sort runs in
// O(t + range) time using counting buckets over the k-th coordinate range,
// which is O(t) when coordinates are bounded; this is the primitive that
// makes the whole schedule computation O(td).
func BucketSortByCoord(ns []Vec, k int) []int {
	t := len(ns)
	order := make([]int, t)
	if t == 0 {
		return order
	}
	lo, hi := ns[0][k], ns[0][k]
	for _, n := range ns {
		if n[k] < lo {
			lo = n[k]
		}
		if n[k] > hi {
			hi = n[k]
		}
	}
	span := hi - lo + 1
	if span > 4*t+16 {
		// Degenerate, very spread-out coordinates: fall back to a stable
		// comparison sort to keep memory proportional to t.
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return ns[order[a]][k] < ns[order[b]][k] })
		return order
	}
	count := make([]int, span+1)
	for _, n := range ns {
		count[n[k]-lo+1]++
	}
	for i := 1; i <= span; i++ {
		count[i] += count[i-1]
	}
	for i, n := range ns {
		b := n[k] - lo
		order[count[b]] = i
		count[b]++
	}
	return order
}

// CountDistinctNonZero returns C_k: the number of distinct non-zero k-th
// coordinates occurring in the neighborhood ns (Propositions 3.2 and 3.3).
func CountDistinctNonZero(ns []Vec, k int) int {
	seen := make(map[int]struct{})
	for _, n := range ns {
		if n[k] != 0 {
			seen[n[k]] = struct{}{}
		}
	}
	return len(seen)
}
