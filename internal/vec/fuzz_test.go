package vec

import (
	"testing"
)

// FuzzBucketSortByCoord checks, for arbitrary encoded neighborhoods, that
// the returned order is a stable sorted permutation. Run with
// `go test -fuzz FuzzBucketSortByCoord ./internal/vec/` for a real fuzzing
// session; the seed corpus runs as part of the normal tests.
func FuzzBucketSortByCoord(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(0), uint8(2))
	f.Add([]byte{255, 0, 255, 0}, uint8(1), uint8(2))
	f.Add([]byte{7}, uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, dRaw uint8) {
		d := int(dRaw)%4 + 1
		if len(raw) < d {
			return
		}
		k := int(kRaw) % d
		tCount := len(raw) / d
		if tCount == 0 || tCount > 200 {
			return
		}
		ns := make([]Vec, tCount)
		for i := range ns {
			ns[i] = make(Vec, d)
			for j := 0; j < d; j++ {
				ns[i][j] = int(int8(raw[i*d+j]))
			}
		}
		order := BucketSortByCoord(ns, k)
		if len(order) != tCount {
			t.Fatalf("order length %d != %d", len(order), tCount)
		}
		seen := make([]bool, tCount)
		for pos, idx := range order {
			if idx < 0 || idx >= tCount || seen[idx] {
				t.Fatalf("not a permutation: %v", order)
			}
			seen[idx] = true
			if pos > 0 {
				a, b := order[pos-1], idx
				if ns[a][k] > ns[b][k] {
					t.Fatalf("not sorted at %d", pos)
				}
				if ns[a][k] == ns[b][k] && a > b {
					t.Fatalf("not stable at %d", pos)
				}
			}
		}
	})
}

// FuzzGridRankCoordRoundTrip checks rank/coordinate round trips and the
// shift identity on arbitrary small grids.
func FuzzGridRankCoordRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(7), int8(-2), int8(5))
	f.Add(uint8(1), uint8(1), uint8(0), int8(0), int8(0))
	f.Fuzz(func(t *testing.T, aRaw, bRaw, rankRaw uint8, dx, dy int8) {
		a := int(aRaw)%6 + 1
		b := int(bRaw)%6 + 1
		g, err := NewGrid([]int{a, b}, nil)
		if err != nil {
			t.Fatal(err)
		}
		rank := int(rankRaw) % g.Size()
		c := g.CoordOf(rank)
		back, err := g.RankOf(c)
		if err != nil || back != rank {
			t.Fatalf("round trip %d -> %v -> %d (%v)", rank, c, back, err)
		}
		rel := Vec{int(dx), int(dy)}
		tgt, ok := g.RankDisplace(rank, rel)
		if !ok {
			t.Fatal("torus displacement failed")
		}
		orig, ok := g.RankDisplace(tgt, rel.Neg())
		if !ok || orig != rank {
			t.Fatalf("shift identity: %d -> %d -> %d", rank, tgt, orig)
		}
	})
}
