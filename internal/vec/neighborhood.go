package vec

import "fmt"

// Neighborhood is an ordered list of relative coordinate offsets, the
// t-neighborhood of the paper. Repetitions are allowed; the zero vector, if
// present, makes a process a neighbor of itself. Order is significant: data
// blocks in the collective operations are stored in neighbor order.
type Neighborhood []Vec

// Clone returns a deep copy of the neighborhood.
func (n Neighborhood) Clone() Neighborhood {
	m := make(Neighborhood, len(n))
	for i, v := range n {
		m[i] = v.Clone()
	}
	return m
}

// Validate checks that all offsets have dimension d.
func (n Neighborhood) Validate(d int) error {
	if len(n) == 0 {
		return fmt.Errorf("vec: empty neighborhood")
	}
	for i, v := range n {
		if len(v) != d {
			return fmt.Errorf("vec: neighbor %d has %d coordinates, want %d", i, len(v), d)
		}
	}
	return nil
}

// Equal reports whether two neighborhoods are identical element-wise,
// including order. This is the isomorphism condition of the paper: all
// processes must pass the exact same list of relative coordinates.
func (n Neighborhood) Equal(m Neighborhood) bool {
	if len(n) != len(m) {
		return false
	}
	for i := range n {
		if !n[i].Equal(m[i]) {
			return false
		}
	}
	return true
}

// CanonicalEqual reports whether two neighborhoods are equal as multisets,
// i.e. identical after lexicographic sorting. Section 2.2 of the paper uses
// this weaker check ("identical to the neighborhood of the root in some
// sorted order") when auto-detecting Cartesian neighborhoods from a
// distributed graph.
func (n Neighborhood) CanonicalEqual(m Neighborhood) bool {
	if len(n) != len(m) {
		return false
	}
	a, b := n.Clone(), m.Clone()
	SortLex(a)
	SortLex(b)
	return Neighborhood(a).Equal(Neighborhood(b))
}

// Flatten serializes the neighborhood into a flat []int of length t*d,
// the wire/argument format of Cart_neighborhood_create (Listing 1).
func (n Neighborhood) Flatten() []int {
	if len(n) == 0 {
		return nil
	}
	d := len(n[0])
	out := make([]int, 0, len(n)*d)
	for _, v := range n {
		out = append(out, v...)
	}
	return out
}

// Unflatten parses a flat []int of length t*d into a neighborhood of t
// d-dimensional offsets, the inverse of Flatten.
func Unflatten(flat []int, d int) (Neighborhood, error) {
	if d <= 0 {
		return nil, fmt.Errorf("vec: non-positive dimension %d", d)
	}
	if len(flat)%d != 0 {
		return nil, fmt.Errorf("vec: flat neighborhood length %d is not a multiple of d=%d", len(flat), d)
	}
	t := len(flat) / d
	n := make(Neighborhood, t)
	for i := 0; i < t; i++ {
		n[i] = Vec(append([]int(nil), flat[i*d:(i+1)*d]...))
	}
	return n, nil
}

// Stencil generates the (d, n, f) neighborhood family of the paper's
// evaluation (Section 4.1.1): all n^d vectors whose every coordinate lies in
// {f, f+1, ..., f+n-1}, in row-major order of the coordinate values. With
// n = 3, f = -1 this is the Moore neighborhood (3^d-point stencil); with
// n = 4 or 5 and f = -1 the neighborhood becomes asymmetric. The zero vector
// (the process itself) is included whenever f <= 0 < f+n, matching the
// paper's t = n^d accounting.
func Stencil(d, n, f int) (Neighborhood, error) {
	if d <= 0 || n <= 0 {
		return nil, fmt.Errorf("vec: Stencil requires positive d and n, got d=%d n=%d", d, n)
	}
	t := 1
	for i := 0; i < d; i++ {
		t *= n
	}
	ns := make(Neighborhood, 0, t)
	cur := make(Vec, d)
	for i := range cur {
		cur[i] = f
	}
	for {
		ns = append(ns, cur.Clone())
		// Row-major increment with carry, last coordinate fastest.
		k := d - 1
		for k >= 0 {
			cur[k]++
			if cur[k] < f+n {
				break
			}
			cur[k] = f
			k--
		}
		if k < 0 {
			break
		}
	}
	return ns, nil
}

// Moore generates the Moore neighborhood of radius r in d dimensions: all
// (2r+1)^d vectors with every coordinate in [-r, r], including the zero
// vector. Moore(d, 1) is the 3^d-point stencil.
func Moore(d, r int) (Neighborhood, error) {
	return Stencil(d, 2*r+1, -r)
}

// VonNeumann generates the von Neumann neighborhood of radius r in d
// dimensions: all vectors whose L1 norm is at most r, including the zero
// vector. VonNeumann(d, 1) is the classic (2d+1)-point stencil and, minus
// the zero vector, is exactly the default neighborhood of an MPI Cartesian
// communicator.
func VonNeumann(d, r int) (Neighborhood, error) {
	full, err := Moore(d, r)
	if err != nil {
		return nil, err
	}
	var ns Neighborhood
	for _, v := range full {
		l1 := 0
		for _, x := range v {
			if x < 0 {
				l1 -= x
			} else {
				l1 += x
			}
		}
		if l1 <= r {
			ns = append(ns, v)
		}
	}
	return ns, nil
}

// Star generates the star (axis) neighborhood of radius r in d dimensions:
// the zero vector plus all offsets k·e_i with 1 <= |k| <= r — the
// (2dr+1)-point stencils of higher-order finite-difference schemes (the
// paper's references [1, 12] motivate such shapes). Unlike the Moore
// family, every offset has exactly one non-zero coordinate, so the
// message-combining alltoall volume equals the trivial volume and
// combining wins at every block size.
func Star(d, r int) (Neighborhood, error) {
	if d <= 0 || r <= 0 {
		return nil, fmt.Errorf("vec: Star requires positive d and r, got d=%d r=%d", d, r)
	}
	ns := Neighborhood{make(Vec, d)}
	for i := 0; i < d; i++ {
		for k := -r; k <= r; k++ {
			if k == 0 {
				continue
			}
			v := make(Vec, d)
			v[i] = k
			ns = append(ns, v)
		}
	}
	return ns, nil
}

// Translate returns the neighborhood with offset added to every vector —
// e.g. shifting a symmetric stencil into the paper's asymmetric (f ≠ −1)
// families.
func (n Neighborhood) Translate(offset Vec) Neighborhood {
	out := make(Neighborhood, len(n))
	for i, v := range n {
		out[i] = v.Add(offset)
	}
	return out
}

// Scale returns the neighborhood with every coordinate multiplied by
// factor — dilated stencils (a radius-1 star scaled by r touches the same
// processes as the axis points of a radius-r star).
func (n Neighborhood) Scale(factor int) Neighborhood {
	out := make(Neighborhood, len(n))
	for i, v := range n {
		w := make(Vec, len(v))
		for j, x := range v {
			w[j] = x * factor
		}
		out[i] = w
	}
	return out
}

// Mirror returns the neighborhood with every offset negated: the source
// view of a target neighborhood (and vice versa). For symmetric stencils
// it is a permutation of the original.
func (n Neighborhood) Mirror() Neighborhood {
	out := make(Neighborhood, len(n))
	for i, v := range n {
		out[i] = v.Neg()
	}
	return out
}

// Union concatenates two neighborhoods (multiset union; order preserved).
// Combine with Dedup to build composite stencils without repetitions.
func (n Neighborhood) Union(m Neighborhood) Neighborhood {
	out := make(Neighborhood, 0, len(n)+len(m))
	out = append(out, n.Clone()...)
	out = append(out, m.Clone()...)
	return out
}

// Dedup returns the neighborhood with repeated offsets removed, keeping
// first occurrences in order.
func (n Neighborhood) Dedup() Neighborhood {
	seen := make(map[string]struct{}, len(n))
	var out Neighborhood
	for _, v := range n {
		k := v.String()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, v.Clone())
	}
	return out
}

// WithoutZero returns a copy of the neighborhood with all zero vectors
// removed (the pure communication part of a stencil).
func (n Neighborhood) WithoutZero() Neighborhood {
	var out Neighborhood
	for _, v := range n {
		if !v.IsZero() {
			out = append(out, v.Clone())
		}
	}
	return out
}

// HasZero reports whether the zero vector occurs in the neighborhood.
func (n Neighborhood) HasZero() bool {
	for _, v := range n {
		if v.IsZero() {
			return true
		}
	}
	return false
}

// Dims returns the dimensionality d of the neighborhood (0 if empty).
func (n Neighborhood) Dims() int {
	if len(n) == 0 {
		return 0
	}
	return len(n[0])
}
