package vec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := Vec{1, -2, 0}
	w := v.Clone()
	if !v.Equal(w) {
		t.Fatalf("clone not equal: %v vs %v", v, w)
	}
	w[0] = 9
	if v[0] == 9 {
		t.Fatalf("clone aliases original")
	}
	if v.IsZero() {
		t.Errorf("%v reported zero", v)
	}
	if !(Vec{0, 0, 0}).IsZero() {
		t.Errorf("zero vector not reported zero")
	}
	if got := v.NonZeros(); got != 2 {
		t.Errorf("NonZeros(%v) = %d, want 2", v, got)
	}
	if got := v.Add(Vec{1, 1, 1}); !got.Equal(Vec{2, -1, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(Vec{1, 1, 1}); !got.Equal(Vec{0, -3, -1}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Neg(); !got.Equal(Vec{-1, 2, 0}) {
		t.Errorf("Neg = %v", got)
	}
	if got := v.Axis(1); !got.Equal(Vec{0, -2, 0}) {
		t.Errorf("Axis = %v", got)
	}
	if got := v.String(); got != "(1,-2,0)" {
		t.Errorf("String = %q", got)
	}
}

func TestVecLessLexicographic(t *testing.T) {
	cases := []struct {
		a, b Vec
		want bool
	}{
		{Vec{0, 0}, Vec{0, 1}, true},
		{Vec{0, 1}, Vec{0, 0}, false},
		{Vec{1, 0}, Vec{0, 9}, false},
		{Vec{-1, 5}, Vec{0, -9}, true},
		{Vec{2, 2}, Vec{2, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("Less(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSortLex(t *testing.T) {
	vs := []Vec{{1, 1}, {-1, 0}, {0, 2}, {-1, -1}, {0, 2}}
	SortLex(vs)
	want := []Vec{{-1, -1}, {-1, 0}, {0, 2}, {0, 2}, {1, 1}}
	for i := range want {
		if !vs[i].Equal(want[i]) {
			t.Fatalf("SortLex = %v, want %v", vs, want)
		}
	}
}

func TestGridRankCoordRoundTrip(t *testing.T) {
	g, err := NewGrid([]int{3, 4, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 60 {
		t.Fatalf("Size = %d, want 60", g.Size())
	}
	for r := 0; r < g.Size(); r++ {
		c := g.CoordOf(r)
		back, err := g.RankOf(c)
		if err != nil {
			t.Fatalf("RankOf(%v): %v", c, err)
		}
		if back != r {
			t.Fatalf("round trip %d -> %v -> %d", r, c, back)
		}
	}
}

func TestGridRowMajorOrder(t *testing.T) {
	g, _ := NewGrid([]int{2, 3}, nil)
	// MPI convention: last dimension varies fastest.
	want := []Vec{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	for r, w := range want {
		if got := g.CoordOf(r); !got.Equal(w) {
			t.Errorf("CoordOf(%d) = %v, want %v", r, got, w)
		}
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := NewGrid(nil, nil); err == nil {
		t.Error("NewGrid(nil) succeeded")
	}
	if _, err := NewGrid([]int{2, 0}, nil); err == nil {
		t.Error("NewGrid with zero extent succeeded")
	}
	if _, err := NewGrid([]int{2, 2}, []bool{true}); err == nil {
		t.Error("NewGrid with mismatched periods succeeded")
	}
	g, _ := NewGrid([]int{2, 2}, nil)
	if _, err := g.RankOf(Vec{1}); err == nil {
		t.Error("RankOf with wrong arity succeeded")
	}
	if _, err := g.RankOf(Vec{2, 0}); err == nil {
		t.Error("RankOf out of range succeeded")
	}
}

func TestDisplacePeriodic(t *testing.T) {
	g, _ := NewGrid([]int{3, 3}, nil) // torus
	dst, ok := g.Displace(Vec{0, 0}, Vec{-1, -1})
	if !ok || !dst.Equal(Vec{2, 2}) {
		t.Fatalf("Displace wrap = %v, %v", dst, ok)
	}
	dst, ok = g.Displace(Vec{2, 2}, Vec{4, 7})
	if !ok || !dst.Equal(Vec{0, 0}) {
		t.Fatalf("Displace big wrap = %v, %v", dst, ok)
	}
}

func TestDisplaceMeshBoundary(t *testing.T) {
	g, _ := NewGrid([]int{3, 3}, []bool{false, true})
	if _, ok := g.Displace(Vec{0, 0}, Vec{-1, 0}); ok {
		t.Error("mesh displacement off the edge succeeded")
	}
	dst, ok := g.Displace(Vec{0, 0}, Vec{0, -1})
	if !ok || !dst.Equal(Vec{0, 2}) {
		t.Errorf("periodic dimension failed to wrap: %v %v", dst, ok)
	}
}

func TestRankDisplace(t *testing.T) {
	g, _ := NewGrid([]int{4, 4}, nil)
	// rank 0 = (0,0); offset (1,1) -> (1,1) = rank 5.
	r, ok := g.RankDisplace(0, Vec{1, 1})
	if !ok || r != 5 {
		t.Fatalf("RankDisplace = %d, %v; want 5", r, ok)
	}
	r, ok = g.RankDisplace(0, Vec{-1, -1})
	if !ok || r != 15 {
		t.Fatalf("RankDisplace wrap = %d, %v; want 15", r, ok)
	}
}

// The shift identity underlying deadlock freedom (Section 3 of the paper):
// if process R sends to R+N[i], then R is the source of its own target's
// i-th receive: (R + N[i]) - N[i] = R.
func TestDisplaceShiftIdentity(t *testing.T) {
	g, _ := NewGrid([]int{3, 5, 2}, nil)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		r := rng.Intn(g.Size())
		rel := Vec{rng.Intn(9) - 4, rng.Intn(9) - 4, rng.Intn(9) - 4}
		tgt, ok := g.RankDisplace(r, rel)
		if !ok {
			t.Fatal("torus displacement failed")
		}
		back, ok := g.RankDisplace(tgt, rel.Neg())
		if !ok || back != r {
			t.Fatalf("shift identity violated: %d --%v--> %d --neg--> %d", r, rel, tgt, back)
		}
	}
}

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		p, d int
		want []int
	}{
		{60, 3, []int{5, 4, 3}},
		{1024, 5, []int{4, 4, 4, 4, 4}},
		{64, 3, []int{4, 4, 4}},
		{7, 2, []int{7, 1}},
		{1, 4, []int{1, 1, 1, 1}},
	}
	for _, c := range cases {
		got, err := DimsCreate(c.p, c.d)
		if err != nil {
			t.Fatalf("DimsCreate(%d,%d): %v", c.p, c.d, err)
		}
		prod := 1
		for _, x := range got {
			prod *= x
		}
		if prod != c.p {
			t.Errorf("DimsCreate(%d,%d) = %v, product %d", c.p, c.d, got, prod)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("DimsCreate(%d,%d) = %v, want %v", c.p, c.d, got, c.want)
		}
	}
	if _, err := DimsCreate(0, 3); err == nil {
		t.Error("DimsCreate(0,3) succeeded")
	}
}

func TestDimsCreateProductProperty(t *testing.T) {
	f := func(pRaw, dRaw uint8) bool {
		p := int(pRaw)%500 + 1
		d := int(dRaw)%6 + 1
		dims, err := DimsCreate(p, d)
		if err != nil {
			return false
		}
		prod := 1
		for i, x := range dims {
			prod *= x
			if i > 0 && dims[i-1] < x {
				return false // must be non-increasing
			}
		}
		return prod == p && len(dims) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBucketSortByCoordStable(t *testing.T) {
	ns := []Vec{{2, 0}, {-1, 1}, {2, 2}, {0, 3}, {-1, 4}, {0, 5}}
	order := BucketSortByCoord(ns, 0)
	// Sorted by coordinate 0: -1 (indices 1,4), 0 (3,5), 2 (0,2) — stable.
	want := []int{1, 4, 3, 5, 0, 2}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestBucketSortByCoordSparseFallback(t *testing.T) {
	// Coordinates spread out far beyond 4t+16 force the comparison path.
	ns := []Vec{{100000}, {-100000}, {0}, {100000}, {5}}
	order := BucketSortByCoord(ns, 0)
	want := []int{1, 2, 4, 0, 3}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestBucketSortByCoordProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		t0 := rng.Intn(50) + 1
		d := rng.Intn(4) + 1
		k := rng.Intn(d)
		ns := make([]Vec, t0)
		for i := range ns {
			ns[i] = make(Vec, d)
			for j := range ns[i] {
				ns[i][j] = rng.Intn(11) - 5
			}
		}
		order := BucketSortByCoord(ns, k)
		if len(order) != t0 {
			t.Fatalf("order length %d != %d", len(order), t0)
		}
		seen := make([]bool, t0)
		for pos, idx := range order {
			if idx < 0 || idx >= t0 || seen[idx] {
				t.Fatalf("order is not a permutation: %v", order)
			}
			seen[idx] = true
			if pos > 0 {
				prev, cur := order[pos-1], idx
				if ns[prev][k] > ns[cur][k] {
					t.Fatalf("not sorted at %d: %v", pos, order)
				}
				if ns[prev][k] == ns[cur][k] && prev > cur {
					t.Fatalf("not stable at %d: %v", pos, order)
				}
			}
		}
	}
}

func TestCountDistinctNonZero(t *testing.T) {
	ns := []Vec{{0, 1}, {1, 1}, {-1, 0}, {1, 2}, {0, 0}}
	if got := CountDistinctNonZero(ns, 0); got != 2 {
		t.Errorf("C_0 = %d, want 2", got)
	}
	if got := CountDistinctNonZero(ns, 1); got != 2 {
		t.Errorf("C_1 = %d, want 2", got)
	}
}

func TestStencilFamilySizes(t *testing.T) {
	for _, d := range []int{2, 3, 4, 5} {
		for _, n := range []int{3, 4, 5} {
			ns, err := Stencil(d, n, -1)
			if err != nil {
				t.Fatal(err)
			}
			want := 1
			for i := 0; i < d; i++ {
				want *= n
			}
			if len(ns) != want {
				t.Errorf("Stencil(%d,%d,-1): %d vectors, want %d", d, n, len(ns), want)
			}
			if !ns.HasZero() {
				t.Errorf("Stencil(%d,%d,-1) missing zero vector", d, n)
			}
			for _, v := range ns {
				for _, x := range v {
					if x < -1 || x > n-2 {
						t.Fatalf("Stencil(%d,%d,-1) coordinate %v out of range", d, n, v)
					}
				}
			}
		}
	}
}

func TestStencilMatchesPaperExample(t *testing.T) {
	// d=2, n=3, f=-1 is the 9-point Moore neighborhood listed in §4.1.1.
	ns, err := Stencil(2, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	want := Neighborhood{
		{-1, -1}, {-1, 0}, {-1, 1},
		{0, -1}, {0, 0}, {0, 1},
		{1, -1}, {1, 0}, {1, 1},
	}
	if !ns.Equal(want) {
		t.Fatalf("Stencil(2,3,-1) = %v, want %v", ns, want)
	}
	// n=4 adds offsets reaching +2 and keeps f=-1 (asymmetric, non-Moore).
	ns4, _ := Stencil(2, 4, -1)
	if len(ns4) != 16 {
		t.Fatalf("Stencil(2,4,-1) has %d vectors", len(ns4))
	}
	hasTwoTwo := false
	for _, v := range ns4 {
		if v.Equal(Vec{2, 2}) {
			hasTwoTwo = true
		}
	}
	if !hasTwoTwo {
		t.Error("Stencil(2,4,-1) missing (2,2)")
	}
}

func TestMooreAndVonNeumann(t *testing.T) {
	m, err := Moore(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 27 {
		t.Errorf("Moore(3,1) size %d, want 27", len(m))
	}
	vn, err := VonNeumann(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vn) != 5 {
		t.Errorf("VonNeumann(2,1) size %d, want 5", len(vn))
	}
	vn2, _ := VonNeumann(3, 2)
	// |{v in {-2..2}^3 : |v|_1 <= 2}| = 1 + 6 + (6 + 12) = 25.
	if len(vn2) != 25 {
		t.Errorf("VonNeumann(3,2) size %d, want 25", len(vn2))
	}
}

func TestStar(t *testing.T) {
	s, err := Star(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2*3*2+1 {
		t.Errorf("Star(3,2) size %d, want 13", len(s))
	}
	if !s.HasZero() {
		t.Error("Star missing zero offset")
	}
	for _, v := range s {
		if v.NonZeros() > 1 {
			t.Errorf("Star offset %v has multiple non-zeros", v)
		}
	}
	if _, err := Star(0, 1); err == nil {
		t.Error("Star(0,1) accepted")
	}
	if _, err := Star(2, 0); err == nil {
		t.Error("Star(2,0) accepted")
	}
}

func TestNeighborhoodFlattenRoundTrip(t *testing.T) {
	ns, _ := Stencil(3, 3, -1)
	flat := ns.Flatten()
	if len(flat) != 27*3 {
		t.Fatalf("flat length %d", len(flat))
	}
	back, err := Unflatten(flat, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(ns) {
		t.Fatal("Unflatten(Flatten(ns)) != ns")
	}
	if _, err := Unflatten([]int{1, 2, 3}, 2); err == nil {
		t.Error("Unflatten with bad length succeeded")
	}
	if _, err := Unflatten([]int{1, 2}, 0); err == nil {
		t.Error("Unflatten with d=0 succeeded")
	}
}

func TestNeighborhoodEqualAndCanonical(t *testing.T) {
	a := Neighborhood{{0, 1}, {1, 0}, {1, 1}}
	b := Neighborhood{{1, 1}, {0, 1}, {1, 0}}
	if a.Equal(b) {
		t.Error("order-sensitive Equal matched permuted lists")
	}
	if !a.CanonicalEqual(b) {
		t.Error("CanonicalEqual failed on permuted lists")
	}
	c := Neighborhood{{0, 1}, {1, 0}, {2, 2}}
	if a.CanonicalEqual(c) {
		t.Error("CanonicalEqual matched different multisets")
	}
	// Repetitions matter as multiset elements.
	d := Neighborhood{{0, 1}, {0, 1}, {1, 0}}
	e := Neighborhood{{0, 1}, {1, 0}, {1, 0}}
	if d.CanonicalEqual(e) {
		t.Error("CanonicalEqual ignored multiplicities")
	}
}

func TestNeighborhoodHelpers(t *testing.T) {
	ns := Neighborhood{{0, 0}, {1, 0}, {0, 0}, {0, -1}}
	if !ns.HasZero() {
		t.Error("HasZero false")
	}
	wz := ns.WithoutZero()
	if len(wz) != 2 || wz.HasZero() {
		t.Errorf("WithoutZero = %v", wz)
	}
	if ns.Dims() != 2 {
		t.Errorf("Dims = %d", ns.Dims())
	}
	if (Neighborhood{}).Dims() != 0 {
		t.Error("empty Dims != 0")
	}
	if err := ns.Validate(2); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := ns.Validate(3); err == nil {
		t.Error("Validate accepted wrong dimension")
	}
	if err := (Neighborhood{}).Validate(2); err == nil {
		t.Error("Validate accepted empty neighborhood")
	}
}

func TestNeighborhoodTransforms(t *testing.T) {
	n := Neighborhood{{0, 1}, {1, 0}}
	tr := n.Translate(Vec{1, 1})
	if !tr.Equal(Neighborhood{{1, 2}, {2, 1}}) {
		t.Errorf("Translate = %v", tr)
	}
	sc := n.Scale(3)
	if !sc.Equal(Neighborhood{{0, 3}, {3, 0}}) {
		t.Errorf("Scale = %v", sc)
	}
	mi := n.Mirror()
	if !mi.Equal(Neighborhood{{0, -1}, {-1, 0}}) {
		t.Errorf("Mirror = %v", mi)
	}
	// Transforms return copies.
	tr[0][0] = 99
	if n[0][0] == 99 {
		t.Error("Translate aliases the original")
	}
	// Moore neighborhoods are mirror-symmetric as multisets.
	m, _ := Moore(2, 1)
	if !m.Mirror().CanonicalEqual(m) {
		t.Error("Moore mirror not canonical-equal")
	}
}

func TestNeighborhoodUnionDedup(t *testing.T) {
	a := Neighborhood{{0, 1}, {1, 0}}
	b := Neighborhood{{1, 0}, {1, 1}}
	u := a.Union(b)
	if len(u) != 4 {
		t.Fatalf("Union size %d", len(u))
	}
	d := u.Dedup()
	if len(d) != 3 {
		t.Fatalf("Dedup size %d: %v", len(d), d)
	}
	if !d.Equal(Neighborhood{{0, 1}, {1, 0}, {1, 1}}) {
		t.Errorf("Dedup order: %v", d)
	}
	// Composite stencil: star ∪ diagonal corners = 9-point Moore.
	star, _ := VonNeumann(2, 1)
	corners := Neighborhood{{-1, -1}, {-1, 1}, {1, -1}, {1, 1}}
	moore, _ := Moore(2, 1)
	if !star.Union(corners).Dedup().CanonicalEqual(moore) {
		t.Error("star ∪ corners != Moore")
	}
}
