package cartcc_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"cartcc"
)

// TestFacadeAllCollectiveWrappers drives every collective wrapper of the
// public API once on a 3×3 torus with the 9-point stencil, verifying the
// wiring end to end.
func TestFacadeAllCollectiveWrappers(t *testing.T) {
	nbh, err := cartcc.Stencil(2, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	tn := len(nbh)
	err = cartcc.Launch(9, func(w *cartcc.ProcComm) error {
		c, err := cartcc.NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil, cartcc.WithAlgorithm(cartcc.AlgorithmAuto))
		if err != nil {
			return err
		}
		grid := c.Grid()
		expectBlock := func(i int) int {
			src, _ := grid.RankDisplace(w.Rank(), nbh[i].Neg())
			return src
		}

		// Alltoall + AlltoallInit + RunPlan + StartPlan.
		send := make([]int, tn)
		recv := make([]int, tn)
		for i := range send {
			send[i] = w.Rank()
		}
		if err := cartcc.Alltoall(c, send, recv); err != nil {
			return err
		}
		for i := range recv {
			if recv[i] != expectBlock(i) {
				return fmt.Errorf("alltoall block %d: %d", i, recv[i])
			}
		}
		plan, err := cartcc.AlltoallInit(c, 1, cartcc.AlgorithmAuto)
		if err != nil {
			return err
		}
		if err := cartcc.RunPlan(plan, send, recv); err != nil {
			return err
		}
		h, err := cartcc.StartPlan(plan, send, recv)
		if err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}

		// Allgather family.
		ag := make([]int, tn)
		if err := cartcc.Allgather(c, []int{w.Rank()}, ag); err != nil {
			return err
		}
		for i := range ag {
			if ag[i] != expectBlock(i) {
				return fmt.Errorf("allgather block %d: %d", i, ag[i])
			}
		}
		if _, err := cartcc.AllgatherInit(c, 1, cartcc.AlgorithmAuto); err != nil {
			return err
		}

		// v variants.
		counts := make([]int, tn)
		displs := make([]int, tn)
		for i := range counts {
			counts[i] = 1
			displs[i] = i
		}
		if err := cartcc.Alltoallv(c, send, counts, displs, recv, counts, displs); err != nil {
			return err
		}
		if err := cartcc.Allgatherv(c, []int{w.Rank()}, ag, counts, displs); err != nil {
			return err
		}
		if _, err := cartcc.AlltoallvInit(c, counts, displs, counts, displs, cartcc.AlgorithmAuto); err != nil {
			return err
		}
		if _, err := cartcc.AllgathervInit(c, 1, counts, displs, cartcc.AlgorithmAuto); err != nil {
			return err
		}

		// w variants.
		var sendL, recvL []cartcc.Layout
		for i := 0; i < tn; i++ {
			sendL = append(sendL, cartcc.Contiguous(i, 1))
			recvL = append(recvL, cartcc.Contiguous(i, 1))
		}
		if err := cartcc.Alltoallw(c, send, sendL, recv, recvL); err != nil {
			return err
		}
		if err := cartcc.Allgatherw(c, []int{w.Rank()}, cartcc.Contiguous(0, 1), ag, recvL); err != nil {
			return err
		}
		if _, err := cartcc.AlltoallwInit(c, sendL, recvL, cartcc.AlgorithmAuto); err != nil {
			return err
		}
		if _, err := cartcc.AllgatherwInit(c, cartcc.Contiguous(0, 1), recvL, cartcc.AlgorithmAuto); err != nil {
			return err
		}

		// Reduction.
		sum := make([]float64, 1)
		if err := cartcc.NeighborReduce(c, []float64{1}, sum, cartcc.SumOp); err != nil {
			return err
		}
		if sum[0] != float64(tn) {
			return fmt.Errorf("reduce sum %v", sum[0])
		}
		rp, err := cartcc.NeighborReduceInit(c, 1, cartcc.AlgorithmAuto)
		if err != nil {
			return err
		}
		if err := cartcc.RunReduce(rp, []float64{1}, sum, cartcc.SumOp); err != nil {
			return err
		}

		// Baseline neighborhood collectives over the dist graph.
		g, err := c.DistGraph()
		if err != nil {
			return err
		}
		if err := cartcc.NeighborAlltoall(g, send, recv); err != nil {
			return err
		}
		req, err := cartcc.IneighborAlltoall(g, send, recv)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if err := cartcc.NeighborAlltoallv(g, send, counts, displs, recv, counts, displs); err != nil {
			return err
		}
		if err := cartcc.NeighborAlltoallw(g, send, sendL, recv, recvL); err != nil {
			return err
		}
		if err := cartcc.NeighborAllgather(g, []int{w.Rank()}, ag); err != nil {
			return err
		}
		req2, err := cartcc.IneighborAllgather(g, []int{w.Rank()}, ag)
		if err != nil {
			return err
		}
		if _, err := req2.Wait(); err != nil {
			return err
		}

		// Global collectives.
		bc := []int{0}
		if w.Rank() == 0 {
			bc[0] = 42
		}
		if err := cartcc.Bcast(w, bc, 0); err != nil {
			return err
		}
		if bc[0] != 42 {
			return fmt.Errorf("bcast %d", bc[0])
		}
		all := make([]int, 9)
		if err := cartcc.GlobalAllgather(w, []int{w.Rank()}, all); err != nil {
			return err
		}
		var gat []int
		if w.Rank() == 0 {
			gat = make([]int, 9)
		}
		if err := cartcc.GlobalGather(w, []int{w.Rank()}, gat, 0); err != nil {
			return err
		}
		a2a := make([]int, 9)
		src2 := make([]int, 9)
		for i := range src2 {
			src2[i] = w.Rank()*100 + i
		}
		if err := cartcc.GlobalAlltoall(w, src2, a2a); err != nil {
			return err
		}
		for r := 0; r < 9; r++ {
			if a2a[r] != r*100+w.Rank() {
				return fmt.Errorf("global alltoall %v", a2a)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHelpersAndGenerators(t *testing.T) {
	if nbh, err := cartcc.Moore(2, 1); err != nil || len(nbh) != 9 {
		t.Errorf("Moore: %v %v", nbh, err)
	}
	if nbh, err := cartcc.VonNeumann(2, 1); err != nil || len(nbh) != 5 {
		t.Errorf("VonNeumann: %v %v", nbh, err)
	}
	if nbh, err := cartcc.Star(2, 2); err != nil || len(nbh) != 9 {
		t.Errorf("Star: %v %v", nbh, err)
	}
	dims, err := cartcc.DimsCreate(12, 2)
	if err != nil || !reflect.DeepEqual(dims, []int{4, 3}) {
		t.Errorf("DimsCreate: %v %v", dims, err)
	}
	if n, err := cartcc.Decompose(12, 4); err != nil || n != 3 {
		t.Errorf("Decompose: %d %v", n, err)
	}
}

func TestFacadeFlatCreateAndHelpers(t *testing.T) {
	err := cartcc.Launch(4, func(w *cartcc.ProcComm) error {
		flat := []int{0, 1, 1, 0}
		c, err := cartcc.NeighborhoodCreateFlat(w, 2, []int{2, 2}, nil, flat, nil, cartcc.WithReorder())
		if err != nil {
			return err
		}
		if c.NeighborCount() != 2 {
			return fmt.Errorf("t=%d", c.NeighborCount())
		}
		in, out, err := c.RelativeShift(cartcc.Vec{0, 1})
		if err != nil || in < 0 || out < 0 {
			return fmt.Errorf("shift %d %d %v", in, out, err)
		}
		if _, _, err := c.RelativeRank(cartcc.Vec{1, 1}); err != nil {
			return err
		}
		if _, err := c.RelativeCoord(out); err != nil {
			return err
		}
		sources, _, targets, _ := c.NeighborGet()
		if len(sources) != 2 || len(targets) != 2 {
			return fmt.Errorf("NeighborGet %v %v", sources, targets)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMeshExchangers(t *testing.T) {
	err := cartcc.Launch(4, func(w *cartcc.ProcComm) error {
		g, err := cartcc.NewGrid2D[float64](2, 2, 1)
		if err != nil {
			return err
		}
		ex, err := cartcc.NewExchanger2DOn(w, []int{2, 2}, []bool{false, false}, g, true, cartcc.AlgorithmAuto)
		if err != nil {
			return err
		}
		if err := cartcc.Exchange2D(ex, g); err != nil {
			return err
		}
		g3, err := cartcc.NewGrid3D[float64](2, 2, 2, 1)
		if err != nil {
			return err
		}
		// 3-D needs 8 ranks; just construct on a degenerate 1-proc-dims
		// check is invalid here, so only validate the error path.
		if _, err := cartcc.NewExchanger3DOn(w, []int{2, 2}, nil, g3, true, cartcc.Trivial); err == nil {
			return fmt.Errorf("bad 3-D dims accepted")
		}
		// Two-phase exchangers.
		tp, err := cartcc.NewTwoPhaseExchanger2D(w, []int{2, 2}, g, cartcc.Combining)
		if err != nil {
			return err
		}
		if err := cartcc.ExchangeTwoPhase2D(tp, g); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	err = cartcc.Launch(8, func(w *cartcc.ProcComm) error {
		g3, err := cartcc.NewGrid3D[float64](2, 2, 2, 1)
		if err != nil {
			return err
		}
		ex3, err := cartcc.NewExchanger3D(w, []int{2, 2, 2}, g3, true, cartcc.Combining)
		if err != nil {
			return err
		}
		if err := cartcc.Exchange3D(ex3, g3); err != nil {
			return err
		}
		tp3, err := cartcc.NewTwoPhaseExchanger3D(w, []int{2, 2, 2}, g3, cartcc.Combining)
		if err != nil {
			return err
		}
		if err := cartcc.ExchangeTwoPhase3D(tp3, g3); err != nil {
			return err
		}
		cartcc.Heat7(g3, g3, 0) // r=0: dst == src is safe (identity)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeKernels(t *testing.T) {
	err := cartcc.Launch(1, func(w *cartcc.ProcComm) error {
		g, _ := cartcc.NewGrid2D[uint8](4, 4, 1)
		dst, _ := cartcc.NewGrid2D[uint8](4, 4, 1)
		g.Set(1, 1, 1)
		g.Set(1, 2, 1)
		g.Set(2, 1, 1)
		g.Set(2, 2, 1) // block: still life
		cartcc.LifeStep(dst, g)
		for i := 1; i <= 2; i++ {
			for j := 1; j <= 2; j++ {
				if dst.At(i, j) != 1 {
					return fmt.Errorf("block died at (%d,%d)", i, j)
				}
			}
		}
		f, _ := cartcc.NewGrid3D[float64](2, 2, 2, 1)
		fd, _ := cartcc.NewGrid3D[float64](2, 2, 2, 1)
		cartcc.Heat27(fd, f, 0.1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFacadeAutoSelectionAndPlanCache exercises the self-tuning surface
// end to end through the public API: an AlgorithmAuto plan decides after
// its first execution and exposes the Decision record; a second
// identical *Init binds from the shared plan cache (FromCache reports
// it, the hit counter increments and the miss counter does not move);
// and the tuning helpers (Calibrate under a cost model, profile
// install/clear, DecideAlgorithm) round-trip.
func TestFacadeAutoSelectionAndPlanCache(t *testing.T) {
	cartcc.ResetPlanCache()
	t.Cleanup(cartcc.ResetPlanCache)
	nbh, err := cartcc.Stencil(2, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := cartcc.ModelPreset("hydra")
	if err != nil {
		t.Fatal(err)
	}
	err = cartcc.Run(cartcc.RunConfig{Procs: 9, Model: model, Timeout: time.Minute}, func(w *cartcc.ProcComm) error {
		c, err := cartcc.NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		first, err := cartcc.AlltoallInit(c, 4, cartcc.AlgorithmAuto)
		if err != nil {
			return err
		}
		send := make([]int64, len(nbh)*4)
		recv := make([]int64, len(nbh)*4)
		if err := cartcc.RunPlan(first, send, recv); err != nil {
			return err
		}
		dec, ok := first.Decision()
		if !ok {
			return fmt.Errorf("Auto plan exposes no Decision after Run")
		}
		if dec.Chosen != cartcc.Combining || first.Effective() != cartcc.Combining {
			return fmt.Errorf("32B blocks under hydra: chose %v (effective %v), want combining", dec.Chosen, first.Effective())
		}
		if err := cartcc.Barrier(w); err != nil {
			return err
		}
		// The second identical Init must be a cache hit, not a recompile.
		before := cartcc.SnapshotPlanCache()
		second, err := cartcc.AlltoallInit(c, 4, cartcc.AlgorithmAuto)
		if err != nil {
			return err
		}
		if !second.FromCache() {
			return fmt.Errorf("second identical AlltoallInit recompiled instead of binding from cache")
		}
		after := cartcc.SnapshotPlanCache()
		if after.Hits <= before.Hits {
			return fmt.Errorf("plan-cache hits did not increment: %d -> %d", before.Hits, after.Hits)
		}
		if after.Misses != before.Misses {
			return fmt.Errorf("second Init recorded a miss: %d -> %d", before.Misses, after.Misses)
		}
		if err := cartcc.RunPlan(second, send, recv); err != nil {
			return err
		}
		// Calibrate under the virtual-time model returns the model's
		// constants on every rank, deterministically.
		prof, err := cartcc.Calibrate(w)
		if err != nil {
			return err
		}
		if prof.Source != "model" || prof.Alpha != model.Alpha {
			return fmt.Errorf("calibration under model: %+v", prof)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Profile helpers (outside the world: process-global state).
	def := cartcc.DefaultMachineProfile()
	if def.Beta <= 0 {
		t.Fatalf("default profile has no bandwidth term: %+v", def)
	}
	if err := cartcc.SetMachineProfile(def); err != nil {
		t.Fatal(err)
	}
	if got, ok := cartcc.MachineProfileInstalled(); !ok || got.Alpha != def.Alpha {
		t.Fatalf("installed profile did not round-trip: %+v ok=%v", got, ok)
	}
	cartcc.ClearMachineProfile()
	if _, ok := cartcc.MachineProfileInstalled(); ok {
		t.Fatal("profile still installed after ClearMachineProfile")
	}
	// The pure selection model: the Moore fixture crosses over, so tiny
	// blocks pick combining and huge blocks pick trivial.
	if d := cartcc.DecideAlgorithm(cartcc.OpAlltoall, 8, 4, 12, 2, 8, def); d.Chosen != cartcc.Combining {
		t.Errorf("DecideAlgorithm 8B: %v, want combining (%s)", d.Chosen, d)
	}
	if d := cartcc.DecideAlgorithm(cartcc.OpAlltoall, 8, 4, 12, 2, 1<<20, def); d.Chosen != cartcc.Trivial {
		t.Errorf("DecideAlgorithm 1MiB: %v, want trivial (%s)", d.Chosen, d)
	}
}

func TestFacadeMeshAlltoallInit(t *testing.T) {
	nbh, _ := cartcc.Stencil(1, 3, -1)
	err := cartcc.Launch(4, func(w *cartcc.ProcComm) error {
		c, err := cartcc.NeighborhoodCreate(w, []int{4}, []bool{false}, nbh, nil)
		if err != nil {
			return err
		}
		p, err := cartcc.MeshAlltoallInit(c, 2)
		if err != nil {
			return err
		}
		send := make([]int, 6)
		recv := make([]int, 6)
		return cartcc.RunPlan(p, send, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
}
