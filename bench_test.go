// Benchmarks regenerating the paper's tables and figures with the Go
// benchmark harness. Each BenchmarkFigN corresponds to a figure of the
// evaluation (Section 4); BenchmarkTable1 covers the schedule-structure
// table. Wall-clock ns/op measures this runtime's real execution; the
// "vus/op" metric is the virtual time per operation under the α-β cost
// model of the named system profile, which is what reproduces the paper's
// shapes (see EXPERIMENTS.md). cmd/cartbench regenerates the full figures
// with all panels, block sizes and series.
package cartcc_test

import (
	"fmt"
	"testing"

	"cartcc"
)

// benchCase is one (figure panel, block size, series) cell.
type benchCase struct {
	profile string
	d, n    int
	procs   int
	m       int
	op      string // "alltoall", "allgather", "alltoallv"
	series  string // "neighbor", "ineighbor", "trivial", "combining"
}

// runCollectiveBench executes b.N synchronized operations of the case
// under the profile's cost model and reports virtual µs/op.
func runCollectiveBench(b *testing.B, bc benchCase) {
	b.Helper()
	model, err := cartcc.ModelPreset(bc.profile)
	if err != nil {
		b.Fatal(err)
	}
	nbh, err := cartcc.Stencil(bc.d, bc.n, -1)
	if err != nil {
		b.Fatal(err)
	}
	dims, err := cartcc.DimsCreate(bc.procs, bc.d)
	if err != nil {
		b.Fatal(err)
	}
	var vtime float64
	err = cartcc.Run(cartcc.RunConfig{Procs: bc.procs, Model: model, Seed: 1}, func(w *cartcc.ProcComm) error {
		c, err := cartcc.NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		op, err := buildBenchOp(c, w, nbh.Dims(), len(nbh), bc)
		if err != nil {
			return err
		}
		if err := cartcc.Barrier(w); err != nil {
			return err
		}
		t0 := w.VTime()
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				return err
			}
		}
		elapsed := []float64{w.VTime() - t0}
		if err := cartcc.Allreduce(w, elapsed, elapsed, cartcc.MaxOf); err != nil {
			return err
		}
		if w.Rank() == 0 {
			vtime = elapsed[0]
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(vtime/float64(b.N)*1e6, "vus/op")
}

// buildBenchOp constructs the measured operation closure for one series.
func buildBenchOp(c *cartcc.Comm, w *cartcc.ProcComm, d, t int, bc benchCase) (func() error, error) {
	switch bc.op {
	case "alltoall":
		send := make([]int32, t*bc.m)
		recv := make([]int32, t*bc.m)
		switch bc.series {
		case "neighbor", "ineighbor":
			g, err := c.DistGraph()
			if err != nil {
				return nil, err
			}
			return func() error { return neighborAlltoall(g, send, recv, bc.series == "ineighbor") }, nil
		case "trivial":
			p, err := cartcc.AlltoallInit(c, bc.m, cartcc.Trivial)
			if err != nil {
				return nil, err
			}
			return func() error { return cartcc.RunPlan(p, send, recv) }, nil
		case "combining":
			p, err := cartcc.AlltoallInit(c, bc.m, cartcc.Combining)
			if err != nil {
				return nil, err
			}
			return func() error { return cartcc.RunPlan(p, send, recv) }, nil
		}
	case "allgather":
		send := make([]int32, bc.m)
		recv := make([]int32, t*bc.m)
		switch bc.series {
		case "neighbor":
			g, err := c.DistGraph()
			if err != nil {
				return nil, err
			}
			return func() error { return neighborAllgather(g, send, recv) }, nil
		case "trivial":
			p, err := cartcc.AllgatherInit(c, bc.m, cartcc.Trivial)
			if err != nil {
				return nil, err
			}
			return func() error { return cartcc.RunPlan(p, send, recv) }, nil
		case "combining":
			p, err := cartcc.AllgatherInit(c, bc.m, cartcc.Combining)
			if err != nil {
				return nil, err
			}
			return func() error { return cartcc.RunPlan(p, send, recv) }, nil
		}
	case "alltoallv":
		// The paper's Figure 6 sizing: block i of m·(d−z+1) elements for z
		// non-zero coordinates, 0 for the self block.
		nbh := c.Neighborhood()
		counts := make([]int, t)
		total := 0
		for i, rel := range nbh {
			if z := rel.NonZeros(); z > 0 {
				counts[i] = bc.m * (d - z + 1)
			}
			total += counts[i]
		}
		displs := make([]int, t)
		run := 0
		for i, ct := range counts {
			displs[i] = run
			run += ct
		}
		send := make([]int32, total)
		recv := make([]int32, total)
		switch bc.series {
		case "neighbor":
			g, err := c.DistGraph()
			if err != nil {
				return nil, err
			}
			return func() error { return neighborAlltoallv(g, send, counts, displs, recv) }, nil
		case "combining":
			p, err := cartcc.AlltoallvInit(c, counts, displs, counts, displs, cartcc.Combining)
			if err != nil {
				return nil, err
			}
			return func() error { return cartcc.RunPlan(p, send, recv) }, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown case %+v", bc)
}

// neighborAlltoall runs the (non)blocking baseline.
func neighborAlltoall(g *cartcc.ProcComm, send, recv []int32, nonblocking bool) error {
	if !nonblocking {
		return cartcc.NeighborAlltoall(g, send, recv)
	}
	req, err := cartcc.IneighborAlltoall(g, send, recv)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

func neighborAllgather(g *cartcc.ProcComm, send, recv []int32) error {
	return cartcc.NeighborAllgather(g, send, recv)
}

func neighborAlltoallv(g *cartcc.ProcComm, send []int32, counts, displs []int, recv []int32) error {
	return cartcc.NeighborAlltoallv(g, send, counts, displs, recv, counts, displs)
}

// subName renders the sub-benchmark name.
func (bc benchCase) subName() string {
	return fmt.Sprintf("d%d_n%d_m%d_%s", bc.d, bc.n, bc.m, bc.series)
}

// BenchmarkTable1Schedules measures the O(td) schedule computations for
// the largest Table 1 neighborhood (d=5, n=5: t = 3125).
func BenchmarkTable1Schedules(b *testing.B) {
	nbh, err := cartcc.Stencil(5, 5, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("stats_d5_n5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := cartcc.ComputeStats(nbh)
			if s.VolAlltoall != 12500 {
				b.Fatal("wrong volume")
			}
		}
	})
}

// BenchmarkFig3Alltoall regenerates representative cells of Figure 3
// (Open-MPI-on-Hydra profile): Cart_alltoall vs the neighborhood-
// collective baseline.
func BenchmarkFig3Alltoall(b *testing.B) {
	for _, bc := range []benchCase{
		{"hydra", 3, 3, 27, 1, "alltoall", "neighbor"},
		{"hydra", 3, 3, 27, 1, "alltoall", "ineighbor"},
		{"hydra", 3, 3, 27, 1, "alltoall", "trivial"},
		{"hydra", 3, 3, 27, 1, "alltoall", "combining"},
		{"hydra", 3, 3, 27, 100, "alltoall", "neighbor"},
		{"hydra", 3, 3, 27, 100, "alltoall", "combining"},
		{"hydra", 5, 5, 32, 1, "alltoall", "neighbor"},
		{"hydra", 5, 5, 32, 1, "alltoall", "combining"},
	} {
		bc := bc
		b.Run(bc.subName(), func(b *testing.B) { runCollectiveBench(b, bc) })
	}
}

// BenchmarkFig4Alltoall regenerates a Figure 4 cell (the second MPI
// library of the paper; same direct-delivery baseline in this runtime).
func BenchmarkFig4Alltoall(b *testing.B) {
	for _, bc := range []benchCase{
		{"hydra", 3, 5, 27, 1, "alltoall", "neighbor"},
		{"hydra", 3, 5, 27, 1, "alltoall", "combining"},
		{"hydra", 3, 5, 27, 10, "alltoall", "combining"},
	} {
		bc := bc
		b.Run(bc.subName(), func(b *testing.B) { runCollectiveBench(b, bc) })
	}
}

// BenchmarkFig5Alltoall regenerates Figure 5 cells under the Cray-Titan
// profile (the two series the paper plots there).
func BenchmarkFig5Alltoall(b *testing.B) {
	for _, bc := range []benchCase{
		{"titan", 5, 3, 32, 1, "alltoall", "neighbor"},
		{"titan", 5, 3, 32, 1, "alltoall", "combining"},
		{"titan", 5, 3, 32, 100, "alltoall", "neighbor"},
		{"titan", 5, 3, 32, 100, "alltoall", "combining"},
	} {
		bc := bc
		b.Run(bc.subName(), func(b *testing.B) { runCollectiveBench(b, bc) })
	}
}

// BenchmarkFig6Allgather regenerates Figure 6 (top): Cart_allgather for
// the d=5, n=5 neighborhood.
func BenchmarkFig6Allgather(b *testing.B) {
	for _, bc := range []benchCase{
		{"hydra", 5, 5, 32, 1, "allgather", "neighbor"},
		{"hydra", 5, 5, 32, 1, "allgather", "trivial"},
		{"hydra", 5, 5, 32, 1, "allgather", "combining"},
		{"hydra", 5, 5, 32, 10, "allgather", "combining"},
	} {
		bc := bc
		b.Run(bc.subName(), func(b *testing.B) { runCollectiveBench(b, bc) })
	}
}

// BenchmarkFig6Alltoallv regenerates Figure 6 (bottom): the irregular
// Cart_alltoallv with the paper's m·(d−z) block sizing, Titan profile.
func BenchmarkFig6Alltoallv(b *testing.B) {
	for _, bc := range []benchCase{
		{"titan", 3, 3, 27, 1, "alltoallv", "neighbor"},
		{"titan", 3, 3, 27, 1, "alltoallv", "combining"},
		{"titan", 5, 5, 32, 1, "alltoallv", "neighbor"},
		{"titan", 5, 5, 32, 1, "alltoallv", "combining"},
	} {
		bc := bc
		b.Run(bc.subName(), func(b *testing.B) { runCollectiveBench(b, bc) })
	}
}

// BenchmarkFig7NoisyAlltoall measures the Figure 7 configuration (d=3,
// n=3, m=1 combining Cart_alltoall) under the noisy Titan model; the
// distribution itself is rendered by `cartbench fig7`.
func BenchmarkFig7NoisyAlltoall(b *testing.B) {
	runCollectiveBench(b, benchCase{"titan-noisy", 3, 3, 27, 1, "alltoall", "combining"})
}
