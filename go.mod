module cartcc

go 1.24
