package main

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"cartcc/internal/bench"
	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// The chaos experiment sweeps injected-fault scenarios over the Cartesian
// collectives and reports how the runtime reacts: how fast a failure is
// detected, how many ranks survive, whether the self-healing wrapper
// (cart.Recoverable: consensus shrink, re-embed, re-execute) brings the
// survivors back, and how long the outage lasted (MTTR). It doubles as an
// end-to-end demonstration of the wait-for-graph deadlock monitor on a
// mismatched schedule.

// chaosResult is one scenario row of the report.
type chaosResult struct {
	scenario  string
	variant   string
	outcome   string
	detect    time.Duration // max over survivors; 0 when nothing failed
	survivors int
	recovery  bool // the scenario exercises shrink-and-re-embed recovery
	recovered bool
	mttr      time.Duration // max recovery time over survivors
	elapsed   time.Duration
}

const (
	chaosProcs = 9 // 3x3 torus
	chaosM     = 4 // block elements
)

// chaosStencil returns the 8-neighbor (Moore) stencil on a 2-d torus.
func chaosStencil() (vec.Neighborhood, error) {
	return vec.Stencil(2, 3, -1)
}

// chaosObs collects per-rank observations from one run (one slot per
// world rank, no locking needed).
type chaosObs struct {
	detect    []time.Duration // first failure observation latency
	mttr      []time.Duration // wall-clock spent inside recovery
	alive     []bool          // body completed (possibly after recovery)
	recovered []bool          // completed with at least one recovery cycle
	spare     []bool          // survived but left the shrunken grid
}

func newChaosObs() *chaosObs {
	return &chaosObs{
		detect:    make([]time.Duration, chaosProcs),
		mttr:      make([]time.Duration, chaosProcs),
		alive:     make([]bool, chaosProcs),
		recovered: make([]bool, chaosProcs),
		spare:     make([]bool, chaosProcs),
	}
}

// chaosBody runs iters executions of one Cartesian collective on a 3x3
// torus under the self-healing wrapper: when members crash mid-exchange,
// cart.Recoverable shrinks the world, re-embeds the grid under policy and
// restarts the exchange loop on the survivors.
func chaosBody(op cart.OpKind, algo cart.Algorithm, policy cart.ReembedPolicy, iters int,
	obs *chaosObs, calibrate func(c *cart.Comm, loopStartOp func() int)) func(w *mpi.Comm) error {
	return func(w *mpi.Comm) error {
		nbh, err := chaosStencil()
		if err != nil {
			return err
		}
		c, err := cart.NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			// Collective failures are not observed uniformly: revoke before
			// bailing so peers still blocked inside the create fail out too.
			w.Revoke()
			return err
		}
		if calibrate != nil {
			calibrate(c, w.OpCount)
		}
		rank := w.Rank()
		out, err := cart.Recoverable(c, cart.RecoverConfig{Policy: policy}, func(cur *cart.Comm) error {
			t := cur.NeighborCount()
			var plan *cart.Plan
			var perr error
			sendLen := t * chaosM
			if op == cart.OpAllgather {
				sendLen = chaosM
				plan, perr = cart.AllgatherInit(cur, chaosM, algo)
			} else {
				plan, perr = cart.AlltoallInit(cur, chaosM, algo)
			}
			if perr != nil {
				return perr
			}
			send := make([]int32, sendLen)
			recv := make([]int32, t*chaosM)
			for i := 0; i < iters; i++ {
				iterStart := time.Now()
				if err := cart.Run(plan, send, recv); err != nil {
					if obs.detect[rank] == 0 {
						obs.detect[rank] = time.Since(iterStart)
					}
					return err
				}
			}
			return nil
		})
		if out != nil {
			obs.mttr[rank] = time.Duration(out.RecoveryNs)
			obs.spare[rank] = out.Spare
			obs.recovered[rank] = err == nil && out.Recoveries > 0
		}
		if err != nil {
			return err
		}
		obs.alive[rank] = true
		return nil
	}
}

// chaosCrash runs one crash scenario: calibrate the victim's operation
// counter against a clean run, then crash it at the requested fraction of
// the exchange loop and let the self-healing wrapper rebuild the world.
func chaosCrash(op cart.OpKind, algo cart.Algorithm, policy cart.ReembedPolicy, iters int, frac float64) (chaosResult, error) {
	const victim = 4 // torus center: neighbor of every rank in the Moore stencil
	res := chaosResult{
		scenario: fmt.Sprintf("crash rank %d at %d%%", victim, int(frac*100)),
		variant:  fmt.Sprintf("%s/%s/%s", op, algo, policy),
	}
	// Calibration pass: a clean run recording the victim's op count at loop
	// start and end, so the crash can be placed inside the exchange loop
	// rather than inside communicator creation.
	var startOp, endOp int
	err := mpi.Run(mpi.Config{Procs: chaosProcs, Seed: 7}, func(w *mpi.Comm) error {
		inner := chaosBody(op, algo, policy, iters, newChaosObs(),
			func(c *cart.Comm, opCount func() int) {
				if c.Base().Rank() == victim {
					startOp = opCount()
				}
			})
		if err := inner(w); err != nil {
			return err
		}
		if w.Rank() == victim {
			endOp = w.OpCount()
		}
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("calibration run: %w", err)
	}
	atOp := startOp + int(frac*float64(endOp-startOp))
	if atOp <= startOp {
		atOp = startOp + 1
	}

	obs := newChaosObs()
	t0 := time.Now()
	err = mpi.Run(mpi.Config{
		Procs:  chaosProcs,
		Seed:   7,
		Faults: &mpi.FaultPlan{Crashes: []mpi.Crash{{Rank: victim, AtOp: atOp}}},
	}, chaosBody(op, algo, policy, iters, obs, nil))
	res.elapsed = time.Since(t0)
	switch {
	case err == nil:
		res.outcome = "no failure observed"
	case mpi.IsRankFailed(err):
		res.outcome = "typed rank-failure, self-healed"
	default:
		res.outcome = fmt.Sprintf("error: %.60v", err)
	}
	res.recovery = true
	res.recovered = true
	for r := 0; r < chaosProcs; r++ {
		if r == victim {
			continue
		}
		if obs.alive[r] {
			res.survivors++
		}
		if obs.detect[r] > res.detect {
			res.detect = obs.detect[r]
		}
		if obs.mttr[r] > res.mttr {
			res.mttr = obs.mttr[r]
		}
		// Spares count as recovered: they survived, joined the consensus
		// and were deliberately left out of the shrunken grid.
		if !obs.recovered[r] {
			res.recovered = false
		}
	}
	return res, nil
}

// chaosStraggler measures how one slow rank stretches the exchange loop:
// the run must still complete — a straggler is not a failure.
func chaosStraggler(op cart.OpKind, algo cart.Algorithm, iters int, perOp time.Duration) (chaosResult, error) {
	res := chaosResult{
		scenario: fmt.Sprintf("straggler rank 4 (+%v/op)", perOp),
		variant:  fmt.Sprintf("%s/%s", op, algo),
	}
	run := func(fp *mpi.FaultPlan) (time.Duration, error) {
		obs := newChaosObs()
		t0 := time.Now()
		err := mpi.Run(mpi.Config{Procs: chaosProcs, Seed: 7, Faults: fp},
			chaosBody(op, algo, cart.CollapseSlab, iters, obs, nil))
		return time.Since(t0), err
	}
	clean, err := run(nil)
	if err != nil {
		return res, err
	}
	slow, err := run(&mpi.FaultPlan{Stragglers: []mpi.Straggler{{Rank: 4, PerOp: perOp}}})
	if err != nil {
		res.outcome = fmt.Sprintf("error: %.60v", err)
		return res, nil
	}
	res.outcome = fmt.Sprintf("completed (%.1fx slower)", float64(slow)/float64(clean))
	res.survivors = chaosProcs
	res.elapsed = slow
	return res, nil
}

// chaosDeadlock runs the mismatched-schedule demo: rank 0 posts a receive
// with a tag nobody sends, every other rank finishes its ring exchange.
// The wait-for-graph monitor must diagnose the orphaned receive in well
// under a second and name the blocked operation.
func chaosDeadlock() (chaosResult, error) {
	res := chaosResult{scenario: "mismatched schedule (wrong tag)", variant: "ring exchange"}
	detect := make([]time.Duration, chaosProcs)
	t0 := time.Now()
	err := mpi.Run(mpi.Config{Procs: chaosProcs, Seed: 7}, func(w *mpi.Comm) error {
		rank, p := w.Rank(), w.Size()
		next, prev := (rank+1)%p, (rank-1+p)%p
		if err := mpi.SendSlice(w, []int32{int32(rank)}, next, 0); err != nil {
			return err
		}
		tag := 0
		if rank == 0 {
			tag = 99 // schedule bug: nobody sends tag 99
		}
		buf := make([]int32, 1)
		start := time.Now()
		_, err := mpi.RecvSlice(w, buf, prev, tag)
		detect[rank] = time.Since(start)
		return err
	})
	res.elapsed = time.Since(t0)
	var dle *mpi.DeadlockError
	switch {
	case errors.As(err, &dle):
		res.outcome = fmt.Sprintf("deadlock diagnosed (%s)", dle.Kind)
	case err == nil:
		res.outcome = "no deadlock detected"
	default:
		res.outcome = fmt.Sprintf("error: %.60v", err)
	}
	res.detect = detect[0]
	res.survivors = chaosProcs - 1
	return res, nil
}

// chaosExperiment sweeps the scenarios and prints the report table.
func chaosExperiment(sc bench.Scale) error {
	iters := 40
	if sc.Reps > 0 && sc.Reps < 10 {
		iters = 10
	}
	fmt.Println("Chaos sweep — injected faults vs self-healing Cartesian collectives (3x3 torus, Moore stencil, m=4)")
	fmt.Println(strings.Repeat("=", 118))
	var rows []chaosResult
	for _, op := range []cart.OpKind{cart.OpAlltoall, cart.OpAllgather} {
		for _, algo := range []cart.Algorithm{cart.Trivial, cart.Combining} {
			for _, policy := range []cart.ReembedPolicy{cart.CollapseSlab, cart.DenseRelabel} {
				for _, frac := range []float64{0.1, 0.5} {
					row, err := chaosCrash(op, algo, policy, iters, frac)
					if err != nil {
						return err
					}
					rows = append(rows, row)
				}
			}
		}
	}
	row, err := chaosStraggler(cart.OpAlltoall, cart.Combining, iters, 200*time.Microsecond)
	if err != nil {
		return err
	}
	rows = append(rows, row)
	if row, err = chaosDeadlock(); err != nil {
		return err
	}
	rows = append(rows, row)

	fmt.Printf("%-31s %-34s %-30s %8s %9s %9s %8s\n",
		"scenario", "variant", "outcome", "detect", "survivors", "recovered", "mttr")
	fmt.Println(strings.Repeat("-", 118))
	ms := func(d time.Duration) string {
		if d <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
	for _, r := range rows {
		recovered := "-"
		if r.recovery {
			recovered = fmt.Sprintf("%v", r.recovered)
		}
		fmt.Printf("%-31s %-34s %-30s %8s %9d %9s %8s\n",
			r.scenario, r.variant, r.outcome, ms(r.detect), r.survivors, recovered, ms(r.mttr))
	}
	return nil
}
