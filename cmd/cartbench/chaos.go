package main

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"cartcc/internal/bench"
	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// The chaos experiment sweeps injected-fault scenarios over the Cartesian
// collectives and reports how the runtime reacts: how fast a failure is
// detected, how many ranks survive, and whether the survivors manage an
// ULFM-style recovery (Revoke -> Shrink -> Barrier -> Agree). It doubles
// as an end-to-end demonstration of the wait-for-graph deadlock monitor on
// a mismatched schedule.

// chaosResult is one scenario row of the report.
type chaosResult struct {
	scenario  string
	variant   string
	outcome   string
	detect    time.Duration // max over survivors; 0 when nothing failed
	survivors int
	recovery  bool // survivors attempted Revoke -> Shrink -> Agree
	recovered bool
	elapsed   time.Duration
}

const (
	chaosProcs = 9 // 3x3 torus
	chaosM     = 4 // block elements
)

// chaosStencil returns the 8-neighbor (Moore) stencil on a 2-d torus.
func chaosStencil() (vec.Neighborhood, error) {
	return vec.Stencil(2, 3, -1)
}

// chaosBody runs iters executions of one Cartesian collective on a 3x3
// torus and, on failure, attempts survivor recovery. Per-rank observations
// land in the shared slices (one slot per rank, no locking needed).
func chaosBody(op cart.OpKind, algo cart.Algorithm, iters int,
	detect []time.Duration, alive, recovered []bool,
	calibrate func(c *cart.Comm, loopStartOp func() int)) func(w *mpi.Comm) error {
	return func(w *mpi.Comm) error {
		nbh, err := chaosStencil()
		if err != nil {
			return err
		}
		c, err := cart.NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		t := len(nbh)
		var plan *cart.Plan
		if op == cart.OpAllgather {
			plan, err = cart.AllgatherInit(c, chaosM, algo)
		} else {
			plan, err = cart.AlltoallInit(c, chaosM, algo)
		}
		if err != nil {
			return err
		}
		sendLen := t * chaosM
		if op == cart.OpAllgather {
			sendLen = chaosM
		}
		send := make([]int32, sendLen)
		recv := make([]int32, t*chaosM)
		if calibrate != nil {
			calibrate(c, w.OpCount)
		}
		rank := w.Rank()
		for i := 0; i < iters; i++ {
			iterStart := time.Now()
			if err := cart.Run(plan, send, recv); err != nil {
				// A peer died (or the communicator was revoked by another
				// survivor's recovery): record the detection latency and try
				// to rebuild on the survivors.
				detect[rank] = time.Since(iterStart)
				if !mpi.IsRankFailed(err) && !errors.Is(err, mpi.ErrRevoked) {
					return err
				}
				alive[rank] = true
				// Unblock survivors still waiting inside the broken exchange,
				// then rebuild: the classic ULFM sequence.
				c.Base().Revoke()
				shrunk, serr := w.Shrink()
				if serr != nil {
					return fmt.Errorf("shrink after %v: %w", err, serr)
				}
				if berr := mpi.Barrier(shrunk); berr != nil {
					return fmt.Errorf("barrier on shrunk comm: %w", berr)
				}
				flag, aerr := shrunk.Agree(1)
				if aerr != nil {
					return fmt.Errorf("agree on shrunk comm: %w", aerr)
				}
				recovered[rank] = flag == 1
				return nil
			}
		}
		alive[rank] = true
		return nil
	}
}

// chaosCrash runs one crash scenario: calibrate the victim's operation
// counter against a clean run, then crash it at the requested fraction of
// the exchange loop and let the survivors recover.
func chaosCrash(op cart.OpKind, algo cart.Algorithm, iters int, frac float64) (chaosResult, error) {
	const victim = 4 // torus center: neighbor of every rank in the Moore stencil
	res := chaosResult{
		scenario: fmt.Sprintf("crash rank %d at %d%%", victim, int(frac*100)),
		variant:  fmt.Sprintf("%s/%s", op, algo),
	}
	// Calibration pass: a clean run recording the victim's op count at loop
	// start and end, so the crash can be placed inside the exchange loop
	// rather than inside communicator creation.
	var startOp, endOp int
	err := mpi.Run(mpi.Config{Procs: chaosProcs, Seed: 7}, func(w *mpi.Comm) error {
		inner := chaosBody(op, algo, iters, make([]time.Duration, chaosProcs),
			make([]bool, chaosProcs), make([]bool, chaosProcs),
			func(c *cart.Comm, opCount func() int) {
				if c.Base().Rank() == victim {
					startOp = opCount()
				}
			})
		if err := inner(w); err != nil {
			return err
		}
		if w.Rank() == victim {
			endOp = w.OpCount()
		}
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("calibration run: %w", err)
	}
	atOp := startOp + int(frac*float64(endOp-startOp))
	if atOp <= startOp {
		atOp = startOp + 1
	}

	detect := make([]time.Duration, chaosProcs)
	alive := make([]bool, chaosProcs)
	recovered := make([]bool, chaosProcs)
	t0 := time.Now()
	err = mpi.Run(mpi.Config{
		Procs:  chaosProcs,
		Seed:   7,
		Faults: &mpi.FaultPlan{Crashes: []mpi.Crash{{Rank: victim, AtOp: atOp}}},
	}, chaosBody(op, algo, iters, detect, alive, recovered, nil))
	res.elapsed = time.Since(t0)
	switch {
	case err == nil:
		res.outcome = "no failure observed"
	case mpi.IsRankFailed(err):
		res.outcome = "typed rank-failure"
	default:
		res.outcome = fmt.Sprintf("error: %.60v", err)
	}
	for r := 0; r < chaosProcs; r++ {
		if r == victim {
			continue
		}
		if alive[r] {
			res.survivors++
		}
		if detect[r] > res.detect {
			res.detect = detect[r]
		}
	}
	res.recovery = true
	res.recovered = true
	for r := 0; r < chaosProcs; r++ {
		if r != victim && !recovered[r] {
			res.recovered = false
		}
	}
	return res, nil
}

// chaosStraggler measures how one slow rank stretches the exchange loop:
// the run must still complete — a straggler is not a failure.
func chaosStraggler(op cart.OpKind, algo cart.Algorithm, iters int, perOp time.Duration) (chaosResult, error) {
	res := chaosResult{
		scenario: fmt.Sprintf("straggler rank 4 (+%v/op)", perOp),
		variant:  fmt.Sprintf("%s/%s", op, algo),
	}
	run := func(fp *mpi.FaultPlan) (time.Duration, error) {
		alive := make([]bool, chaosProcs)
		t0 := time.Now()
		err := mpi.Run(mpi.Config{Procs: chaosProcs, Seed: 7, Faults: fp},
			chaosBody(op, algo, iters, make([]time.Duration, chaosProcs), alive, make([]bool, chaosProcs), nil))
		return time.Since(t0), err
	}
	clean, err := run(nil)
	if err != nil {
		return res, err
	}
	slow, err := run(&mpi.FaultPlan{Stragglers: []mpi.Straggler{{Rank: 4, PerOp: perOp}}})
	if err != nil {
		res.outcome = fmt.Sprintf("error: %.60v", err)
		return res, nil
	}
	res.outcome = fmt.Sprintf("completed (%.1fx slower)", float64(slow)/float64(clean))
	res.survivors = chaosProcs
	res.elapsed = slow
	return res, nil
}

// chaosDeadlock runs the mismatched-schedule demo: rank 0 posts a receive
// with a tag nobody sends, every other rank finishes its ring exchange.
// The wait-for-graph monitor must diagnose the orphaned receive in well
// under a second and name the blocked operation.
func chaosDeadlock() (chaosResult, error) {
	res := chaosResult{scenario: "mismatched schedule (wrong tag)", variant: "ring exchange"}
	detect := make([]time.Duration, chaosProcs)
	t0 := time.Now()
	err := mpi.Run(mpi.Config{Procs: chaosProcs, Seed: 7}, func(w *mpi.Comm) error {
		rank, p := w.Rank(), w.Size()
		next, prev := (rank+1)%p, (rank-1+p)%p
		if err := mpi.SendSlice(w, []int32{int32(rank)}, next, 0); err != nil {
			return err
		}
		tag := 0
		if rank == 0 {
			tag = 99 // schedule bug: nobody sends tag 99
		}
		buf := make([]int32, 1)
		start := time.Now()
		_, err := mpi.RecvSlice(w, buf, prev, tag)
		detect[rank] = time.Since(start)
		return err
	})
	res.elapsed = time.Since(t0)
	var dle *mpi.DeadlockError
	switch {
	case errors.As(err, &dle):
		res.outcome = fmt.Sprintf("deadlock diagnosed (%s)", dle.Kind)
	case err == nil:
		res.outcome = "no deadlock detected"
	default:
		res.outcome = fmt.Sprintf("error: %.60v", err)
	}
	res.detect = detect[0]
	res.survivors = chaosProcs - 1
	return res, nil
}

// chaosExperiment sweeps the scenarios and prints the report table.
func chaosExperiment(sc bench.Scale) error {
	iters := 40
	if sc.Reps > 0 && sc.Reps < 10 {
		iters = 10
	}
	fmt.Println("Chaos sweep — injected faults vs the Cartesian collectives (3x3 torus, Moore stencil, m=4)")
	fmt.Println(strings.Repeat("=", 96))
	var rows []chaosResult
	for _, op := range []cart.OpKind{cart.OpAlltoall, cart.OpAllgather} {
		for _, algo := range []cart.Algorithm{cart.Trivial, cart.Combining} {
			for _, frac := range []float64{0.1, 0.5} {
				row, err := chaosCrash(op, algo, iters, frac)
				if err != nil {
					return err
				}
				rows = append(rows, row)
			}
		}
	}
	row, err := chaosStraggler(cart.OpAlltoall, cart.Combining, iters, 200*time.Microsecond)
	if err != nil {
		return err
	}
	rows = append(rows, row)
	if row, err = chaosDeadlock(); err != nil {
		return err
	}
	rows = append(rows, row)

	fmt.Printf("%-28s %-22s %-28s %9s %10s %9s\n",
		"scenario", "variant", "outcome", "detect", "survivors", "recovered")
	fmt.Println(strings.Repeat("-", 96))
	for _, r := range rows {
		detect := "-"
		if r.detect > 0 {
			detect = fmt.Sprintf("%.1fms", float64(r.detect.Microseconds())/1000)
		}
		recovered := "-"
		if r.recovery {
			recovered = fmt.Sprintf("%v", r.recovered)
		}
		fmt.Printf("%-28s %-22s %-28s %9s %10d %9s\n",
			r.scenario, r.variant, r.outcome, detect, r.survivors, recovered)
	}
	return nil
}
