package main

import (
	"strings"
	"testing"
	"time"

	"cartcc/internal/bench"
	"cartcc/internal/cart"
)

// The cheap experiments run end to end (the heavy ones are exercised by
// the bench package's own tests and by invoking the binary).
func TestRunCheapExperiments(t *testing.T) {
	sc := bench.Scale{ProcsD3: 8, ProcsD5: 32, Reps: 1}
	for _, name := range []string{"table1", "predict", "timeline"} {
		if err := run(name, sc, renderText); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunSmallFigureAllModes(t *testing.T) {
	sc := bench.Scale{ProcsD3: 8, ProcsD5: 32, Reps: 1}
	// A single panel through every render mode.
	panels := bench.Figure6Bottom(sc)
	for _, mode := range []renderMode{renderText, renderCSV, renderBars} {
		if err := figure(mode, "test", "t", panels); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
	}
}

// TestChaosScenarios runs a slice of the chaos sweep directly: one crash
// scenario under the self-healing wrapper (both re-embedding policies) and
// the deadlock-diagnosis demo.
func TestChaosScenarios(t *testing.T) {
	for _, policy := range []cart.ReembedPolicy{cart.CollapseSlab, cart.DenseRelabel} {
		res, err := chaosCrash(cart.OpAlltoall, cart.Combining, policy, 10, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if res.outcome != "typed rank-failure, self-healed" {
			t.Fatalf("%s: crash outcome = %q (%+v)", policy, res.outcome, res)
		}
		if res.survivors != chaosProcs-1 || !res.recovered {
			t.Fatalf("%s: survivors = %d recovered = %v", policy, res.survivors, res.recovered)
		}
		if res.mttr <= 0 {
			t.Fatalf("%s: recovered without recovery time (mttr = %v)", policy, res.mttr)
		}
	}
	dres, err := chaosDeadlock()
	if err != nil {
		t.Fatal(err)
	}
	if dres.detect <= 0 || dres.detect > time.Second {
		t.Fatalf("deadlock detect latency = %v, want (0, 1s]", dres.detect)
	}
	if !strings.HasPrefix(dres.outcome, "deadlock diagnosed") {
		t.Fatalf("deadlock outcome = %q", dres.outcome)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nosuch", bench.QuickScale, renderText); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
