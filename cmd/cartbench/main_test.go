package main

import (
	"testing"

	"cartcc/internal/bench"
)

// The cheap experiments run end to end (the heavy ones are exercised by
// the bench package's own tests and by invoking the binary).
func TestRunCheapExperiments(t *testing.T) {
	sc := bench.Scale{ProcsD3: 8, ProcsD5: 32, Reps: 1}
	for _, name := range []string{"table1", "predict", "timeline"} {
		if err := run(name, sc, renderText); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunSmallFigureAllModes(t *testing.T) {
	sc := bench.Scale{ProcsD3: 8, ProcsD5: 32, Reps: 1}
	// A single panel through every render mode.
	panels := bench.Figure6Bottom(sc)
	for _, mode := range []renderMode{renderText, renderCSV, renderBars} {
		if err := figure(mode, "test", "t", panels); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nosuch", bench.QuickScale, renderText); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
