package main

import (
	"fmt"
	"os"
	"os/signal"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/introspect"
	"cartcc/internal/metrics"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// serveExperiment is the -serve mode: a long-running wall-clock workload
// world with the live introspection plane attached. Sixteen ranks on a
// 4×4 torus continuously run combining Cart_alltoall futures through the
// progress engine while rank 0 serves /metrics, /metrics.json, /healthz,
// /debug/state, /debug/flight and /debug/stragglers on addr; a failure
// (injected or real) writes a post-mortem bundle to dumpDir. The run
// stops after d (0 means until interrupted).
func serveExperiment(addr string, d time.Duration, dumpDir string) error {
	nbh, err := vec.Moore(2, 1)
	if err != nil {
		return err
	}
	const procs = 16
	reg := metrics.NewRegistry(procs)
	insp := introspect.New(introspect.Options{Metrics: reg, DumpDir: dumpDir})

	deadline := make(chan struct{})
	if d > 0 {
		time.AfterFunc(d, func() { close(deadline) })
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		go func() { <-sig; close(deadline) }()
	}

	var srv *introspect.Server
	defer func() {
		if srv != nil {
			srv.Close()
		}
	}()
	err = mpi.Run(mpi.Config{Procs: procs, Metrics: reg, OnFailure: insp.FailureHook}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, []int{4, 4}, nil, nbh, nil)
		if err != nil {
			return err
		}
		const m = 64
		plan, err := cart.AlltoallInit(c, m, cart.Combining)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			insp.Bind(w.World())
			insp.AttachEngine("rank0", c)
			insp.AttachPlan("alltoall-moore-4x4", plan)
			s, err := insp.ListenAndServe(addr)
			if err != nil {
				return err
			}
			srv = s
			fmt.Printf("serving introspection on http://%s\n", s.Addr)
			fmt.Printf("  endpoints: /metrics /metrics.json /healthz /debug/state /debug/flight /debug/stragglers\n")
			if d > 0 {
				fmt.Printf("  workload: %d ranks, combining Cart_alltoall futures for %s\n", procs, d)
			} else {
				fmt.Printf("  workload: %d ranks, combining Cart_alltoall futures until interrupt\n", procs)
			}
		}
		if err := mpi.Barrier(c.Base()); err != nil {
			return err
		}
		send := make([]int32, len(nbh)*m)
		recv := make([]int32, len(nbh)*m)
		// Stopping must be collective: rank 0 alone observes the deadline
		// and broadcasts the verdict, so every rank leaves the loop after
		// the same iteration. Independent per-rank polling would strand
		// neighbors that already posted the next collective.
		stop := []int32{0}
		for {
			if w.Rank() == 0 {
				select {
				case <-deadline:
					stop[0] = 1
				default:
				}
			}
			if err := mpi.Bcast(c.Base(), stop, 0); err != nil {
				return err
			}
			if stop[0] != 0 {
				return nil
			}
			f, err := cart.Start(plan, send, recv)
			if err != nil {
				return err
			}
			if err := f.Wait(); err != nil {
				return err
			}
		}
	})
	if err != nil {
		return err
	}
	fmt.Println("serve workload finished")
	return nil
}
