// Command cartbench regenerates the tables and figures of the paper's
// evaluation (Träff & Hunold, Cartesian Collective Communication, ICPP
// 2019) on the simulated runtime.
//
// Usage:
//
//	cartbench [flags] <experiment>...
//
// Experiments: table1, fig3, fig4, fig5, fig6, fig7 (the paper's
// evaluation), plus crossover (cut-off sweep), timeline (per-rank Gantt
// charts of one exchange), scaling (p-independence check), mesh
// (non-periodic pruned schedules), reduce and reorder (the implemented
// extensions), predict (analytic model), chaos (injected-fault sweep with
// survivor recovery and deadlock diagnosis), allocs and pipeline
// (perf-trajectory records BENCH_P2/P3), autotune (Auto vs fixed
// algorithms with the 1.05x perf gate, BENCH_P7), concurrent (async
// futures vs blocking execution across W tenant worlds with throughput
// and latency gates, BENCH_P8), transport (loopback vs framed tcp/unix
// socket backends with the loopback fast-path allocation gate,
// BENCH_P10), trace (Perfetto/Chrome trace capture with metrics and
// predicted-vs-observed accounting; -o sets the output path), and all.
//
// Flags:
//
//	-scale quick|default   experiment size (default "default")
//	-transport NAME        force a transport backend for wall-clock
//	                       worlds: loopback, tcp or unix (sets
//	                       CARTCC_TRANSPORT; virtual-time figures are
//	                       in-process by construction)
//	-csv                   emit CSV instead of text tables
//	-bars                  render figures as ASCII bar charts
//	-reps N                override repetitions per variant
//	-procs-d3 N            override process count for d<=4 panels
//	-procs-d5 N            override process count for d=5 panels
//	-serve ADDR            serve the live introspection plane (/metrics,
//	                       /healthz, /debug/*) over a continuous workload
//	-serve-for D           stop the -serve workload after D (0 = interrupt)
//	-dump-dir DIR          post-mortem bundle directory for -serve
//
// Figures are printed as text tables: the absolute baseline time per cell
// and, per series, run time relative to the blocking MPI_Neighbor_*
// baseline (the bars of the paper's figures). fig7 prints run-time
// histograms. Absolute numbers are virtual-model times, not the authors'
// hardware; EXPERIMENTS.md compares the shapes against the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cartcc/internal/bench"
	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/stats"
	"cartcc/internal/trace"
	"cartcc/internal/vec"
)

func main() {
	scale := flag.String("scale", "default", "experiment size: quick or default")
	csv := flag.Bool("csv", false, "emit CSV instead of text")
	bars := flag.Bool("bars", false, "render figures as ASCII bar charts")
	reps := flag.Int("reps", 0, "override repetitions per variant")
	procsD3 := flag.Int("procs-d3", 0, "override process count for d<=4 panels")
	procsD5 := flag.Int("procs-d5", 0, "override process count for d=5 panels")
	traceOut := flag.String("o", "trace.json", "output path for the trace experiment")
	serve := flag.String("serve", "", "serve the live introspection plane on this address over a continuous workload (e.g. 127.0.0.1:6060; empty port picks one)")
	serveFor := flag.Duration("serve-for", 0, "stop the -serve workload after this long (0 = until interrupt)")
	dumpDir := flag.String("dump-dir", "", "post-mortem bundle directory for the -serve workload")
	transport := flag.String("transport", "", "force a transport backend for wall-clock worlds: loopback, tcp or unix (sets CARTCC_TRANSPORT)")
	flag.Parse()
	traceOutPath = *traceOut
	if !mpi.KnownTransport(*transport) {
		fmt.Fprintf(os.Stderr, "cartbench: unknown transport %q (want loopback, tcp or unix)\n", *transport)
		os.Exit(2)
	}
	if *transport != "" {
		os.Setenv(mpi.EnvTransport, *transport)
	}

	if *serve != "" {
		if err := serveExperiment(*serve, *serveFor, *dumpDir); err != nil {
			fmt.Fprintf(os.Stderr, "cartbench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	sc := bench.DefaultScale
	if *scale == "quick" {
		sc = bench.QuickScale
	}
	if *reps > 0 {
		sc.Reps = *reps
	}
	if *procsD3 > 0 {
		sc.ProcsD3 = *procsD3
	}
	if *procsD5 > 0 {
		sc.ProcsD5 = *procsD5
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "cartbench: no experiment named; try: table1 fig3 fig4 fig5 fig6 fig7 crossover timeline scaling mesh reduce reorder predict chaos allocs pipeline autotune concurrent transport trace all")
		os.Exit(2)
	}
	mode := renderText
	if *csv {
		mode = renderCSV
	} else if *bars {
		mode = renderBars
	}
	for _, arg := range args {
		if err := run(arg, sc, mode); err != nil {
			fmt.Fprintf(os.Stderr, "cartbench: %s: %v\n", arg, err)
			os.Exit(1)
		}
	}
}

type renderMode int

const (
	renderText renderMode = iota
	renderCSV
	renderBars
)

func run(name string, sc bench.Scale, mode renderMode) error {
	switch name {
	case "all":
		for _, e := range []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "crossover", "timeline", "scaling", "mesh", "reduce", "reorder", "predict"} {
			if err := run(e, sc, mode); err != nil {
				return err
			}
		}
		return nil
	case "table1":
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable1(rows))
		return nil
	case "fig3":
		return figure(mode, "Figure 3 — Cart_alltoall vs MPI_Neighbor_alltoall (Hydra/Open-MPI-like profile)",
			"fig3", bench.Figure3(sc))
	case "fig4":
		return figure(mode, "Figure 4 — Cart_alltoall vs MPI_Neighbor_alltoall (Hydra/Intel-MPI-like profile)",
			"fig4", bench.Figure4(sc))
	case "fig5":
		return figure(mode, "Figure 5 — Cart_alltoall vs MPI_Neighbor_alltoall (Titan/Cray profile)",
			"fig5", bench.Figure5(sc))
	case "fig6":
		if err := figure(mode, "Figure 6 (top) — Cart_allgather, d=5 n=5 (Hydra profile)",
			"fig6top", bench.Figure6Top(sc)); err != nil {
			return err
		}
		return figure(mode, "Figure 6 (bottom) — Cart_alltoallv, d=5 n=5, irregular blocks (Titan profile)",
			"fig6bottom", bench.Figure6Bottom(sc))
	case "fig7":
		return figure7(sc)
	case "crossover":
		return crossover(sc)
	case "timeline":
		return timeline()
	case "scaling":
		return scaling(sc)
	case "mesh":
		return meshExperiment(sc)
	case "reduce":
		return reduceExperiment(sc)
	case "reorder":
		return reorderExperiment(sc)
	case "predict":
		return predict()
	case "chaos":
		return chaosExperiment(sc)
	case "allocs":
		return allocsExperiment(sc)
	case "pipeline":
		return pipelineExperiment(sc)
	case "autotune":
		return autotuneExperiment(sc)
	case "concurrent":
		return concurrentExperiment(sc)
	case "transport":
		return transportExperiment(sc)
	case "trace":
		return traceExperiment()
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

// allocsExperiment measures the runtime's per-operation software overhead
// (ns/op, B/op, allocs/op across the world) for the trivial and combining
// Cart_alltoall and the direct neighbor baseline, and records the sweep in
// BENCH_P2.json so the perf trajectory is tracked across PRs.
func allocsExperiment(sc bench.Scale) error {
	cfg := bench.AllocConfig{D: 2, N: 3, Procs: 16, BlockSizes: []int{1, 16, 256}}
	if sc.Reps > 0 && sc.Reps < bench.DefaultScale.Reps {
		cfg.Iters = 50 // quick scale
	}
	rep, err := bench.RunAllocBench(cfg)
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatAllocReport(rep))
	rec := &bench.BenchP2{
		Description: "Allocation profile of one Cart_alltoall across the world (2-d 9-point stencil, p=16, int32 blocks); totals per operation over all ranks.",
		After:       rep,
	}
	// Track the trajectory: the previous sweep (its baseline if it had one,
	// else its result) becomes the "before" of this record.
	if prev, err := bench.ReadBenchP2("BENCH_P2.json"); err == nil && prev != nil {
		if prev.Before != nil {
			rec.Before = prev.Before
		} else {
			rec.Before = prev.After
		}
	}
	if err := bench.WriteBenchP2("BENCH_P2.json", rec); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_P2.json")
	return nil
}

// pipelineExperiment measures the dependency-DAG pipelined executor
// against the classic per-phase Waitall executor — virtual-time ns/op
// under the hydra LogGP model, swept over block size and over the
// neighborhood's dependency structure (dense Moore forwarding vs
// barrier-free Star rounds), plus the straggler sweep that holds back one
// rank's messages — and records the sweep in BENCH_P3.json so the perf
// trajectory is tracked across PRs.
func pipelineExperiment(sc bench.Scale) error {
	cfg := bench.PipelineConfig{}
	if sc.Reps > 0 && sc.Reps < bench.DefaultScale.Reps {
		cfg.Iters = 5 // quick scale
		cfg.StragglerIters = 5
	}
	rep, err := bench.RunPipelineBench(cfg)
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatPipelineReport(rep))
	rec := &bench.BenchP3{
		Description: "Barriered vs dependency-DAG pipelined executor: virtual-time ns/op (hydra LogGP model) of the combining Cart_alltoall/Cart_allgather on d>=2 tori (int32 blocks) across dense-forwarding Moore and barrier-free Star neighborhoods, and straggler tail latency with every message of one rank held back.",
		After:       rep,
	}
	// Track the trajectory: the previous sweep (its baseline if it had one,
	// else its result) becomes the "before" of this record.
	if prev, err := bench.ReadBenchP3("BENCH_P3.json"); err == nil && prev != nil {
		if prev.Before != nil {
			rec.Before = prev.Before
		} else {
			rec.Before = prev.After
		}
	} else {
		// First record: before this PR every plan ran the per-phase Waitall
		// order, so the baseline is the barriered measurement itself.
		rec.Before = bench.BaselineReport(rep)
	}
	if err := bench.WriteBenchP3("BENCH_P3.json", rec); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_P3.json")
	return nil
}

// autotuneExperiment sweeps the Auto-selected schedule against both
// fixed algorithms under the hydra cost model — (op, stencil, block
// size) — records the sweep in BENCH_P7.json, and enforces the perf
// gate: at every swept point the autotuned virtual time must be within
// bench.AutotuneGateRatio of the best fixed algorithm.
func autotuneExperiment(sc bench.Scale) error {
	cfg := bench.AutotuneConfig{}
	if sc.Reps > 0 && sc.Reps < bench.DefaultScale.Reps {
		cfg.Iters = 2 // quick scale
	}
	rep, err := bench.RunAutotuneBench(cfg)
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatAutotuneReport(rep))
	rec := &bench.BenchP7{
		Description: "Self-tuning algorithm selection: virtual-time ns/op (hydra model) of Algorithm Auto vs fixed trivial/combining for Cart_alltoall and Cart_allgather on 2-d and 3-d stencil tori (int32 blocks), with the selector's pick and predicted crossover per point; the gate demands auto within 1.05x of the best fixed algorithm everywhere.",
		After:       rep,
	}
	// Track the trajectory: the previous sweep (its baseline if it had one,
	// else its result) becomes the "before" of this record.
	if prev, err := bench.ReadBenchP7("BENCH_P7.json"); err == nil && prev != nil {
		if prev.Before != nil {
			rec.Before = prev.Before
		} else {
			rec.Before = prev.After
		}
	}
	if err := bench.WriteBenchP7("BENCH_P7.json", rec); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_P7.json")
	return bench.GateAutotune(rep)
}

// concurrentExperiment benchmarks the asynchronous progress engine
// against blocking execution — aggregate throughput across W tenant
// worlds with K futures in flight, and single-collective latency at a
// large block size — records the run in BENCH_P8.json, and enforces both
// perf gates: >=2x aggregate ops/s at the largest world count where
// overlap is measurable (default scale, multi-core rig; quick scale and
// serial rigs demand parity — see bench.RunConcurrentBench) and async
// latency within 1.05x of blocking Run.
func concurrentExperiment(sc bench.Scale) error {
	cfg := bench.ConcurrentConfig{}
	if sc.Reps > 0 && sc.Reps < bench.DefaultScale.Reps {
		cfg.Iters = 16 // quick scale
		cfg.LatencyIters = 100
		cfg.Rounds = 4
		cfg.ThroughputGate = 1.0
	}
	rep, err := bench.RunConcurrentBench(cfg)
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatConcurrentReport(rep))
	rec := &bench.BenchP8{
		Description: "Async collective futures vs blocking execution (wall clock): aggregate Cart_alltoall throughput of W independent worlds with K futures in flight through the per-world progress engine against serialized blocking loops, and single-collective Start+Wait latency vs Run at 8 KiB blocks; gates demand >=2x aggregate throughput at W=8 (parity on single-core rigs, where blocking parks are already backfilled by co-tenant worlds) and latency within 1.05x.",
		After:       rep,
	}
	// Track the trajectory: the previous run (its baseline if it had one,
	// else its result) becomes the "before" of this record.
	if prev, err := bench.ReadBenchP8("BENCH_P8.json"); err == nil && prev != nil {
		if prev.Before != nil {
			rec.Before = prev.Before
		} else {
			rec.Before = prev.After
		}
	}
	if err := bench.WriteBenchP8("BENCH_P8.json", rec); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_P8.json")
	return bench.GateConcurrent(rep)
}

// transportExperiment sweeps ping-pong latency and trivial Cart_alltoall
// cost over the loopback, tcp and unix transport backends (the socket
// backends as ForceRemote self-worlds, so every message crosses a real
// framed connection), records the sweep in BENCH_P10.json, and enforces
// the loopback fast-path gate: in-process delivery must allocate no
// more than the framed tcp path and stay flat in the block size.
func transportExperiment(sc bench.Scale) error {
	cfg := bench.TransportBenchConfig{}
	if sc.Reps > 0 && sc.Reps < bench.DefaultScale.Reps {
		cfg.Iters = 40 // quick scale
		cfg.PingIters = 400
	}
	rep, err := bench.RunTransportBench(cfg)
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatTransportReport(rep))
	rec := &bench.BenchP10{
		Description: "Pluggable transport sweep (wall clock): ping-pong round-trip latency between two ranks (64 int64s) and trivial Cart_alltoall on a 3x3 Moore torus (int64 blocks) over the in-process loopback and the framed tcp/unix socket backends as ForceRemote self-worlds; the gate demands loopback allocate no more than tcp at every alltoall point and stay flat in the block size.",
		After:       rep,
	}
	// Track the trajectory: the previous sweep (its baseline if it had one,
	// else its result) becomes the "before" of this record.
	if prev, err := bench.ReadBenchP10("BENCH_P10.json"); err == nil && prev != nil {
		if prev.Before != nil {
			rec.Before = prev.Before
		} else {
			rec.Before = prev.After
		}
	}
	if err := bench.WriteBenchP10("BENCH_P10.json", rec); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_P10.json")
	return bench.GateTransportLoopback(rep)
}

// traceOutPath is the -o flag value, bound in main.
var traceOutPath = "trace.json"

// traceExperiment captures one combining Cart_alltoall on a 4×4 torus
// (Moore neighborhood) in virtual time and wall clock, plus a chaos pass
// that crashes one rank mid-collective and records the self-healing
// recovery windows, writes the unified Perfetto/Chrome trace to the -o
// path, and prints the metrics and predicted-vs-observed accounting
// summary. Load the JSON in ui.perfetto.dev (or chrome://tracing) to
// browse it; `carttrace` prints the same file as text tables.
func traceExperiment() error {
	res, err := bench.RunObserve(bench.ObserveConfig{Chaos: true})
	if err != nil {
		return err
	}
	f, err := os.Create(traceOutPath)
	if err != nil {
		return err
	}
	if err := res.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Print(bench.FormatObserve(res))
	fmt.Printf("\nwrote %s — open it in ui.perfetto.dev or chrome://tracing\n", traceOutPath)
	return nil
}

func figure(mode renderMode, title, id string, panels []bench.Panel) error {
	results := make([][]bench.Cell, len(panels))
	for i, p := range panels {
		cells, err := bench.Run(p.Cfg)
		if err != nil {
			return err
		}
		results[i] = cells
	}
	switch mode {
	case renderCSV:
		fmt.Print(bench.CSVPanels(id, panels, results))
	case renderBars:
		fmt.Println(bench.BarPanels(title, panels, results))
	default:
		fmt.Println(bench.FormatPanels(title, panels, results))
	}
	return nil
}

func figure7(sc bench.Scale) error {
	fmt.Println("Figure 7 — run-time distribution of Cart_alltoall (d=3, n=3, m=1) under system noise")
	fmt.Println(strings.Repeat("=", 80))
	for _, hc := range bench.Figure7Configs(sc) {
		h, samples, err := bench.RunHistogram(hc)
		if err != nil {
			return err
		}
		mean := stats.Mean(samples)
		fmt.Printf("\np = %d processes, %d repetitions (times in µs; mean %.2f, median %.2f)\n",
			hc.Procs, hc.Reps, mean, stats.Median(samples))
		fmt.Print(h.Render(1))
	}
	return nil
}

func crossover(sc bench.Scale) error {
	fmt.Println("Cut-off validation — empirical vs analytic crossover block size (Section 3.1)")
	fmt.Println(strings.Repeat("=", 80))
	for _, dn := range [][2]int{{2, 3}, {3, 3}, {3, 5}} {
		procs := sc.ProcsD3
		if dn[0] == 2 {
			procs = 16
		}
		res, err := bench.RunCrossover(dn[0], dn[1], procs, "hydra", nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatCrossover(res))
	}
	return nil
}

// timeline renders per-rank communication Gantt charts of one Cart_alltoall
// under the Hydra model: the direct baseline (a burst of t sends) against
// the combining schedule (d compact phases), made visible.
func timeline() error {
	nbh, err := vec.Stencil(2, 3, -1)
	if err != nil {
		return err
	}
	const procs = 9
	for _, variant := range []struct {
		name string
		algo cart.Algorithm
	}{{"direct baseline (MPI_Neighbor_alltoall)", -1}, {"trivial Cart_alltoall (blocking rounds)", cart.Trivial}, {"message-combining Cart_alltoall", cart.Combining}} {
		rec := trace.NewRecorder(procs)
		err := mpi.Run(mpi.Config{Procs: procs, Model: netmodel.Hydra(), Seed: 1, Recorder: rec, Timeout: time.Minute}, func(w *mpi.Comm) error {
			c, err := cart.NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
			if err != nil {
				return err
			}
			send := make([]int32, len(nbh)*10)
			recv := make([]int32, len(nbh)*10)
			var op func() error
			if variant.algo < 0 {
				g, err := c.DistGraph()
				if err != nil {
					return err
				}
				op = func() error { return mpi.NeighborAlltoall(g, send, recv) }
			} else {
				plan, err := cart.AlltoallInit(c, 10, variant.algo)
				if err != nil {
					return err
				}
				op = func() error { return cart.Run(plan, send, recv) }
			}
			// Trim communicator-creation traffic from the recording.
			if err := mpi.Barrier(c.Base()); err != nil {
				return err
			}
			rec.ResetRank(w.Rank())
			return op()
		})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s — 9-point stencil, 9 processes, m=10 ints (s=inject, r=receive-wait, *=both)\n", variant.name)
		fmt.Print(rec.Render(100))
		fmt.Print(rec.Summary())
	}
	return nil
}

func scaling(sc bench.Scale) error {
	fmt.Println("Weak scaling — the combining advantage is p-independent (per-process counts fixed)")
	fmt.Println(strings.Repeat("=", 80))
	cells, err := bench.RunScalingExperiment(3, 3, 10, []int{27, 64, 125, 216}, "hydra", sc.Reps)
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatScaling(3, 3, 10, cells))
	return nil
}

func meshExperiment(sc bench.Scale) error {
	fmt.Println("Non-periodic mesh extension — pruned combining schedules (paper §2, left open)")
	fmt.Println(strings.Repeat("=", 80))
	for _, op := range []cart.OpKind{cart.OpAlltoall, cart.OpAllgather} {
		res, err := bench.RunMeshExperiment(op, 64, 10, sc.Reps)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatMesh(res, 64, 10))
	}
	return nil
}

func reduceExperiment(sc bench.Scale) error {
	fmt.Println("Neighborhood reduction extension (§2.2) — trivial vs reversed-tree combining")
	fmt.Println(strings.Repeat("=", 80))
	for _, dn := range [][2]int{{3, 3}, {3, 5}} {
		cells, err := bench.RunReduceExperiment(dn[0], dn[1], sc.ProcsD3, "hydra", nil, sc.Reps)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatReduce(dn[0], dn[1], cells))
	}
	return nil
}

func reorderExperiment(sc bench.Scale) error {
	fmt.Println("Rank reordering extension — node-blocked remapping on a two-level machine")
	fmt.Println(strings.Repeat("=", 80))
	res, err := bench.RunReorderExperiment(64, 4, 4000, sc.Reps)
	if err != nil {
		return err
	}
	fmt.Println(bench.FormatReorder(res))
	return nil
}

func predict() error {
	fmt.Println("Analytic prediction — relative run time of message combining (Cα+βVm)/(t(α+βm))")
	fmt.Println(strings.Repeat("=", 80))
	for _, profile := range []string{"hydra", "titan"} {
		model, err := netmodel.Preset(profile)
		if err != nil {
			return err
		}
		fmt.Printf("\nprofile %s (α=%.2gs, β=%.2gs/B): cut-off block size in bytes per (d,n):\n", profile, model.Alpha, model.Beta)
		for _, dn := range [][2]int{{3, 3}, {3, 5}, {5, 3}, {5, 5}} {
			cfg := bench.Config{Op: cart.OpAlltoall, D: dn[0], N: dn[1], F: -1, Profile: profile}
			for _, mBytes := range []int{4, 40, 400} {
				pred, err := bench.Predict(cfg, mBytes)
				if err != nil {
					return err
				}
				fmt.Printf("  d=%d n=%d m=%4dB: combining/direct = %.3f\n", dn[0], dn[1], mBytes, pred[bench.SeriesCombining])
			}
		}
	}
	return nil
}
