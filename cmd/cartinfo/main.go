// Command cartinfo inspects the schedule structure of a Cartesian
// neighborhood without running any communication: the Table 1 quantities
// (trivial rounds t, combining rounds C = Σ C_k, alltoall and allgather
// volumes), the allgather routing-tree dimension order, and the analytic
// cut-off block sizes under the built-in network models.
//
// Usage:
//
//	cartinfo -d 3 -n 5 -f -1          # the paper's stencil family
//	cartinfo -offsets "0,1;1,0;-1,-1" # explicit offset list (d inferred)
//	cartinfo -d 3 -moore 2            # Moore neighborhood of radius 2
//	cartinfo -d 4 -vonneumann 1       # von Neumann (2d+1-point) stencil
//	cartinfo -d 2 -n 3 -select       # Auto selection table + live cache demo
//	cartinfo -d 2 -n 3 -metrics      # demo exchange + merged metrics snapshot
//	cartinfo -live 127.0.0.1:6060    # render a running debug server's state
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/tune"
	"cartcc/internal/vec"
)

func main() {
	d := flag.Int("d", 0, "dimension of the stencil family")
	n := flag.Int("n", 0, "neighbors per dimension of the stencil family")
	f := flag.Int("f", -1, "first offset of the stencil family")
	moore := flag.Int("moore", 0, "Moore neighborhood radius (with -d)")
	vonNeumann := flag.Int("vonneumann", 0, "von Neumann neighborhood radius (with -d)")
	offsets := flag.String("offsets", "", "explicit neighborhood: offsets separated by ';', coordinates by ','")
	schedule := flag.Bool("schedule", false, "print the full round-by-round schedules and the allgather tree")
	sel := flag.Bool("select", false, "print the Auto selection table per (op, block size) and a live plan-cache demo")
	modelName := flag.String("model", "hydra", "machine constants for -select: a netmodel preset, or \"default\"")
	profilePath := flag.String("profile", "", "machine profile JSON for -select (overrides -model; see tune.Save)")
	asJSON := flag.Bool("json", false, "emit the stats and schedules as JSON")
	live := flag.String("live", "", "render the state of a running debug server (cartbench -serve) at this address")
	metricsDemoFlag := flag.Bool("metrics", false, "run a short demo exchange with a metrics registry and print the merged snapshot")
	flag.Parse()

	if *live != "" {
		if err := liveReport(os.Stdout, *live); err != nil {
			fmt.Fprintln(os.Stderr, "cartinfo:", err)
			os.Exit(1)
		}
		return
	}

	nbh, err := buildNeighborhood(*d, *n, *f, *moore, *vonNeumann, *offsets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cartinfo:", err)
		os.Exit(2)
	}
	if *asJSON {
		if err := reportJSON(nbh); err != nil {
			fmt.Fprintln(os.Stderr, "cartinfo:", err)
			os.Exit(1)
		}
		return
	}
	report(nbh)
	if *metricsDemoFlag {
		fmt.Println()
		if err := metricsDemo(os.Stdout, nbh); err != nil {
			fmt.Fprintln(os.Stderr, "cartinfo:", err)
			os.Exit(1)
		}
	}
	if *sel {
		prof, err := resolveSelectionProfile(*profilePath, *modelName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cartinfo:", err)
			os.Exit(2)
		}
		fmt.Println()
		reportSelection(nbh, prof)
	}
	if *schedule {
		fmt.Println()
		fmt.Print(cart.AlltoallSchedule(nbh).Describe())
		fmt.Println()
		fmt.Print(cart.AllgatherSchedule(nbh).Describe())
		fmt.Println()
		fmt.Print(cart.BuildAllgatherTree(nbh, nil).DescribeTree())
	}
}

// resolveSelectionProfile picks the machine constants the -select report
// uses: a saved calibration file, a netmodel preset, or the built-in
// default — mirroring the runtime's own precedence.
func resolveSelectionProfile(path, model string) (tune.Profile, error) {
	if path != "" {
		return tune.Load(path)
	}
	if model == "default" {
		return tune.Default(), nil
	}
	m, err := netmodel.Preset(model)
	if err != nil {
		return tune.Profile{}, err
	}
	return tune.FromModel(m), nil
}

func buildNeighborhood(d, n, f, moore, vonNeumann int, offsets string) (vec.Neighborhood, error) {
	switch {
	case offsets != "":
		return parseOffsets(offsets)
	case moore > 0:
		if d <= 0 {
			return nil, fmt.Errorf("-moore needs -d")
		}
		return vec.Moore(d, moore)
	case vonNeumann > 0:
		if d <= 0 {
			return nil, fmt.Errorf("-vonneumann needs -d")
		}
		return vec.VonNeumann(d, vonNeumann)
	case d > 0 && n > 0:
		return vec.Stencil(d, n, f)
	default:
		return nil, fmt.Errorf("specify -offsets, -d/-n, -d/-moore or -d/-vonneumann")
	}
}

func parseOffsets(s string) (vec.Neighborhood, error) {
	var nbh vec.Neighborhood
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var v vec.Vec
		for _, c := range strings.Split(part, ",") {
			x, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				return nil, fmt.Errorf("bad coordinate %q: %v", c, err)
			}
			v = append(v, x)
		}
		nbh = append(nbh, v)
	}
	if len(nbh) == 0 {
		return nil, fmt.Errorf("empty neighborhood")
	}
	d := len(nbh[0])
	if err := nbh.Validate(d); err != nil {
		return nil, err
	}
	return nbh, nil
}

// reportJSON marshals the neighborhood, the Table 1 statistics, and both
// symbolic schedules for downstream tooling.
func reportJSON(nbh vec.Neighborhood) error {
	s := cart.ComputeStats(nbh)
	ratio := s.CutoffRatio
	if math.IsInf(ratio, 1) {
		ratio = -1 // JSON has no +Inf; -1 encodes "combining always wins"
	}
	out := struct {
		Neighborhood vec.Neighborhood `json:"neighborhood"`
		Stats        cart.Stats       `json:"stats"`
		CutoffRatio  float64          `json:"cutoffRatio"` // -1 = always wins
		Alltoall     *cart.Schedule   `json:"alltoall"`
		Allgather    *cart.Schedule   `json:"allgather"`
	}{
		Neighborhood: nbh,
		Stats:        s,
		CutoffRatio:  ratio,
		Alltoall:     cart.AlltoallSchedule(nbh),
		Allgather:    cart.AllgatherSchedule(nbh),
	}
	// The embedded Stats also carries the raw ratio; zero the +Inf copy so
	// encoding cannot fail.
	if math.IsInf(out.Stats.CutoffRatio, 1) {
		out.Stats.CutoffRatio = -1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func report(nbh vec.Neighborhood) {
	s := cart.ComputeStats(nbh)
	fmt.Printf("neighborhood: t = %d offsets in %d dimensions", s.T, nbh.Dims())
	if nbh.HasZero() {
		fmt.Printf(" (including the zero offset)")
	}
	fmt.Println()
	if s.T <= 32 {
		fmt.Printf("  %v\n", nbh)
	}
	fmt.Println()
	// Predicted is the same analytic C and V the runtime's accounting layer
	// asserts against observed executions (cart.ExecStats.Check).
	tC, tV := cart.Predicted(nbh, cart.OpAlltoall, cart.Trivial)
	fmt.Printf("trivial algorithm (Listing 4):       %4d rounds, volume %d blocks\n", tC, tV)
	aC, aV := cart.Predicted(nbh, cart.OpAlltoall, cart.Combining)
	fmt.Printf("message-combining alltoall (Alg. 1): %4d rounds (C_k = %v), volume %d blocks\n", aC, s.Ck, aV)
	gC, gV := cart.Predicted(nbh, cart.OpAllgather, cart.Combining)
	tree := cart.BuildAllgatherTree(nbh, nil)
	fmt.Printf("message-combining allgather (Alg. 2):%4d rounds, volume %d blocks (tree order %v)\n", gC, gV, tree.DimOrder)
	fmt.Println()
	fmt.Printf("cut-off ratio (t−C)/(V−t): %.3f\n", s.CutoffRatio)
	for _, profile := range []string{"hydra", "titan"} {
		m, err := netmodel.Preset(profile)
		if err != nil {
			continue
		}
		cut := m.CutoffBytes(s.T, s.C, s.VolAlltoall)
		fmt.Printf("  %-6s (α/β = %.0f B): alltoall combining wins below %.0f B per block\n",
			profile, m.Alpha/m.Beta, cut)
	}
	if s.VolAllgather <= s.TComm {
		fmt.Println("  allgather combining wins at every block size (V <= t)")
	}
}

// reportSelection prints the Auto selector's view of the neighborhood:
// the predicted crossover per operation under the given machine profile,
// the decision table over a sweep of block sizes, and a live two-Init
// demonstration of the shared plan cache.
func reportSelection(nbh vec.Neighborhood, prof tune.Profile) {
	d := nbh.Dims()
	fmt.Printf("auto selection (profile %s: α=%.3gs β=%.3gs/B o=%.3gs)\n",
		prof.Source, prof.Alpha, prof.Beta, prof.Overhead())
	sweep := []int{8, 64, 512, 4 << 10, 32 << 10, 256 << 10, 1 << 20}
	for _, op := range []cart.OpKind{cart.OpAlltoall, cart.OpAllgather} {
		t, _ := cart.Predicted(nbh, op, cart.Trivial)
		c, v := cart.Predicted(nbh, op, cart.Combining)
		probe := cart.Decide(op, t, c, v, d, 8, prof)
		cross := "+inf (combining wins at every size)"
		if !math.IsInf(probe.CrossoverBytes, 1) {
			cross = fmt.Sprintf("%.0f B", probe.CrossoverBytes)
		}
		fmt.Printf("\n  %s: t=%d C=%d V=%d, predicted crossover %s\n", op, t, c, v, cross)
		fmt.Printf("    %10s  %-9s  %12s  %12s\n", "block", "chosen", "T_trivial", "T_combining")
		for _, mB := range sweep {
			dec := cart.Decide(op, t, c, v, d, float64(mB), prof)
			fmt.Printf("    %9dB  %-9s  %10.3gs  %10.3gs\n",
				mB, algoLabel(dec.Chosen), dec.CostTrivial, dec.CostCombining)
		}
	}
	fmt.Println()
	if err := cacheDemo(nbh, prof); err != nil {
		fmt.Printf("  plan-cache demo skipped: %v\n", err)
	}
}

func algoLabel(a cart.Algorithm) string {
	if a == cart.Trivial {
		return "trivial"
	}
	return "combining"
}

// cacheDemo builds the smallest torus that carries the neighborhood,
// runs the same Auto AlltoallInit twice and reports the cache
// provenance of each plan: the first compiles (miss), the second binds
// from the shared cache (hit).
func cacheDemo(nbh vec.Neighborhood, prof tune.Profile) error {
	d := nbh.Dims()
	dims := make([]int, d)
	procs := 1
	for k := 0; k < d; k++ {
		ext := 1
		for _, v := range nbh {
			if a := v[k]; a > ext {
				ext = a
			} else if -a > ext {
				ext = -a
			}
		}
		dims[k] = 2*ext + 1
		procs *= dims[k]
	}
	if procs > 512 {
		return fmt.Errorf("demo world needs %d ranks (> 512)", procs)
	}
	if err := tune.SetMachine(prof); err != nil {
		return err
	}
	defer tune.ClearMachine()
	cart.ResetPlanCache()
	return mpi.Run(mpi.Config{Procs: procs}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		const m = 64
		report := func(label string, p *cart.Plan) error {
			send := make([]byte, len(nbh)*m)
			recv := make([]byte, len(nbh)*m)
			if err := cart.Run(p, send, recv); err != nil {
				return err
			}
			if w.Rank() != 0 {
				return nil
			}
			prov := "compiled (cache miss)"
			if p.FromCache() {
				prov = "bound from cache (hit)"
			}
			st := cart.SnapshotPlanCache()
			fmt.Printf("  %s AlltoallInit(m=%dB, Auto) on %v world: %s — cache %d entries, %d hits / %d misses\n",
				label, m, dims, prov, st.Entries, st.Hits, st.Misses)
			if dec, ok := p.Decision(); ok {
				fmt.Printf("    decision: %s\n", dec)
			}
			return nil
		}
		first, err := cart.AlltoallInit(c, m, cart.Auto)
		if err != nil {
			return err
		}
		if err := report("first ", first); err != nil {
			return err
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		second, err := cart.AlltoallInit(c, m, cart.Auto)
		if err != nil {
			return err
		}
		return report("second", second)
	})
}
