// Command cartinfo inspects the schedule structure of a Cartesian
// neighborhood without running any communication: the Table 1 quantities
// (trivial rounds t, combining rounds C = Σ C_k, alltoall and allgather
// volumes), the allgather routing-tree dimension order, and the analytic
// cut-off block sizes under the built-in network models.
//
// Usage:
//
//	cartinfo -d 3 -n 5 -f -1          # the paper's stencil family
//	cartinfo -offsets "0,1;1,0;-1,-1" # explicit offset list (d inferred)
//	cartinfo -d 3 -moore 2            # Moore neighborhood of radius 2
//	cartinfo -d 4 -vonneumann 1       # von Neumann (2d+1-point) stencil
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"cartcc/internal/cart"
	"cartcc/internal/netmodel"
	"cartcc/internal/vec"
)

func main() {
	d := flag.Int("d", 0, "dimension of the stencil family")
	n := flag.Int("n", 0, "neighbors per dimension of the stencil family")
	f := flag.Int("f", -1, "first offset of the stencil family")
	moore := flag.Int("moore", 0, "Moore neighborhood radius (with -d)")
	vonNeumann := flag.Int("vonneumann", 0, "von Neumann neighborhood radius (with -d)")
	offsets := flag.String("offsets", "", "explicit neighborhood: offsets separated by ';', coordinates by ','")
	schedule := flag.Bool("schedule", false, "print the full round-by-round schedules and the allgather tree")
	asJSON := flag.Bool("json", false, "emit the stats and schedules as JSON")
	flag.Parse()

	nbh, err := buildNeighborhood(*d, *n, *f, *moore, *vonNeumann, *offsets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cartinfo:", err)
		os.Exit(2)
	}
	if *asJSON {
		if err := reportJSON(nbh); err != nil {
			fmt.Fprintln(os.Stderr, "cartinfo:", err)
			os.Exit(1)
		}
		return
	}
	report(nbh)
	if *schedule {
		fmt.Println()
		fmt.Print(cart.AlltoallSchedule(nbh).Describe())
		fmt.Println()
		fmt.Print(cart.AllgatherSchedule(nbh).Describe())
		fmt.Println()
		fmt.Print(cart.BuildAllgatherTree(nbh, nil).DescribeTree())
	}
}

func buildNeighborhood(d, n, f, moore, vonNeumann int, offsets string) (vec.Neighborhood, error) {
	switch {
	case offsets != "":
		return parseOffsets(offsets)
	case moore > 0:
		if d <= 0 {
			return nil, fmt.Errorf("-moore needs -d")
		}
		return vec.Moore(d, moore)
	case vonNeumann > 0:
		if d <= 0 {
			return nil, fmt.Errorf("-vonneumann needs -d")
		}
		return vec.VonNeumann(d, vonNeumann)
	case d > 0 && n > 0:
		return vec.Stencil(d, n, f)
	default:
		return nil, fmt.Errorf("specify -offsets, -d/-n, -d/-moore or -d/-vonneumann")
	}
}

func parseOffsets(s string) (vec.Neighborhood, error) {
	var nbh vec.Neighborhood
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var v vec.Vec
		for _, c := range strings.Split(part, ",") {
			x, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				return nil, fmt.Errorf("bad coordinate %q: %v", c, err)
			}
			v = append(v, x)
		}
		nbh = append(nbh, v)
	}
	if len(nbh) == 0 {
		return nil, fmt.Errorf("empty neighborhood")
	}
	d := len(nbh[0])
	if err := nbh.Validate(d); err != nil {
		return nil, err
	}
	return nbh, nil
}

// reportJSON marshals the neighborhood, the Table 1 statistics, and both
// symbolic schedules for downstream tooling.
func reportJSON(nbh vec.Neighborhood) error {
	s := cart.ComputeStats(nbh)
	ratio := s.CutoffRatio
	if math.IsInf(ratio, 1) {
		ratio = -1 // JSON has no +Inf; -1 encodes "combining always wins"
	}
	out := struct {
		Neighborhood vec.Neighborhood `json:"neighborhood"`
		Stats        cart.Stats       `json:"stats"`
		CutoffRatio  float64          `json:"cutoffRatio"` // -1 = always wins
		Alltoall     *cart.Schedule   `json:"alltoall"`
		Allgather    *cart.Schedule   `json:"allgather"`
	}{
		Neighborhood: nbh,
		Stats:        s,
		CutoffRatio:  ratio,
		Alltoall:     cart.AlltoallSchedule(nbh),
		Allgather:    cart.AllgatherSchedule(nbh),
	}
	// The embedded Stats also carries the raw ratio; zero the +Inf copy so
	// encoding cannot fail.
	if math.IsInf(out.Stats.CutoffRatio, 1) {
		out.Stats.CutoffRatio = -1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func report(nbh vec.Neighborhood) {
	s := cart.ComputeStats(nbh)
	fmt.Printf("neighborhood: t = %d offsets in %d dimensions", s.T, nbh.Dims())
	if nbh.HasZero() {
		fmt.Printf(" (including the zero offset)")
	}
	fmt.Println()
	if s.T <= 32 {
		fmt.Printf("  %v\n", nbh)
	}
	fmt.Println()
	// Predicted is the same analytic C and V the runtime's accounting layer
	// asserts against observed executions (cart.ExecStats.Check).
	tC, tV := cart.Predicted(nbh, cart.OpAlltoall, cart.Trivial)
	fmt.Printf("trivial algorithm (Listing 4):       %4d rounds, volume %d blocks\n", tC, tV)
	aC, aV := cart.Predicted(nbh, cart.OpAlltoall, cart.Combining)
	fmt.Printf("message-combining alltoall (Alg. 1): %4d rounds (C_k = %v), volume %d blocks\n", aC, s.Ck, aV)
	gC, gV := cart.Predicted(nbh, cart.OpAllgather, cart.Combining)
	tree := cart.BuildAllgatherTree(nbh, nil)
	fmt.Printf("message-combining allgather (Alg. 2):%4d rounds, volume %d blocks (tree order %v)\n", gC, gV, tree.DimOrder)
	fmt.Println()
	fmt.Printf("cut-off ratio (t−C)/(V−t): %.3f\n", s.CutoffRatio)
	for _, profile := range []string{"hydra", "titan"} {
		m, err := netmodel.Preset(profile)
		if err != nil {
			continue
		}
		cut := m.CutoffBytes(s.T, s.C, s.VolAlltoall)
		fmt.Printf("  %-6s (α/β = %.0f B): alltoall combining wins below %.0f B per block\n",
			profile, m.Alpha/m.Beta, cut)
	}
	if s.VolAllgather <= s.TComm {
		fmt.Println("  allgather combining wins at every block size (V <= t)")
	}
}
