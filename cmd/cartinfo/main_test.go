package main

import (
	"testing"

	"cartcc/internal/vec"
)

func TestBuildNeighborhood(t *testing.T) {
	nbh, err := buildNeighborhood(2, 3, -1, 0, 0, "")
	if err != nil || len(nbh) != 9 {
		t.Fatalf("stencil family: %v %v", nbh, err)
	}
	nbh, err = buildNeighborhood(3, 0, 0, 1, 0, "")
	if err != nil || len(nbh) != 27 {
		t.Fatalf("moore: %v %v", nbh, err)
	}
	nbh, err = buildNeighborhood(2, 0, 0, 0, 1, "")
	if err != nil || len(nbh) != 5 {
		t.Fatalf("von neumann: %v %v", nbh, err)
	}
	if _, err := buildNeighborhood(0, 0, 0, 0, 0, ""); err == nil {
		t.Fatal("no selector accepted")
	}
	if _, err := buildNeighborhood(0, 0, 0, 2, 0, ""); err == nil {
		t.Fatal("moore without d accepted")
	}
	if _, err := buildNeighborhood(0, 0, 0, 0, 2, ""); err == nil {
		t.Fatal("vonneumann without d accepted")
	}
}

func TestParseOffsets(t *testing.T) {
	nbh, err := parseOffsets("0,1; 1,0 ;-1,-1")
	if err != nil {
		t.Fatal(err)
	}
	want := vec.Neighborhood{{0, 1}, {1, 0}, {-1, -1}}
	if !nbh.Equal(want) {
		t.Fatalf("parsed %v", nbh)
	}
	if _, err := parseOffsets("0,x"); err == nil {
		t.Fatal("bad coordinate accepted")
	}
	if _, err := parseOffsets(";"); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := parseOffsets("0,1;1"); err == nil {
		t.Fatal("ragged arity accepted")
	}
}

func TestReportsDoNotPanic(t *testing.T) {
	nbh, _ := vec.Stencil(2, 3, -1)
	report(nbh)
	if err := reportJSON(nbh); err != nil {
		t.Fatal(err)
	}
	// +Inf cut-off path (von Neumann).
	vn, _ := vec.VonNeumann(2, 1)
	if err := reportJSON(vn); err != nil {
		t.Fatal(err)
	}
}
