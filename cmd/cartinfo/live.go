package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/introspect"
	"cartcc/internal/metrics"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// The cartinfo half of the live introspection plane: -live renders a
// running debug server's state as text (the curl-free view), and
// -metrics runs the minimal demo exchange with a metrics registry
// attached and prints the merged cross-rank snapshot.

// liveReport fetches /healthz, /debug/state and /debug/stragglers from a
// debug server (cartbench -serve, or any introspect.Serve) and renders
// them as a compact text report.
func liveReport(w io.Writer, addr string) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	client := &http.Client{Timeout: 5 * time.Second}

	var health struct {
		Status       string `json:"status"`
		Epoch        int64  `json:"epoch"`
		FlightEvents int64  `json:"flight_events"`
		FailedRanks  []int  `json:"failed_ranks"`
	}
	// /healthz serves 503 with a body for stalled/failed worlds; every
	// status is report material here, so only transport errors are fatal.
	if err := fetchJSON(client, addr+"/healthz", &health); err != nil {
		return err
	}
	fmt.Fprintf(w, "world %s: status=%s epoch=%d flight_events=%d", addr, health.Status, health.Epoch, health.FlightEvents)
	if len(health.FailedRanks) > 0 {
		fmt.Fprintf(w, " failed=%v", health.FailedRanks)
	}
	fmt.Fprintln(w)

	var state introspect.StateSnapshot
	if err := fetchJSON(client, addr+"/debug/state", &state); err != nil {
		return err
	}
	if wd := state.World; wd != nil {
		blocked := 0
		for _, r := range wd.Ranks {
			if r.Blocked != "" {
				blocked++
			}
		}
		fmt.Fprintf(w, "  size=%d wires_out=%d blocked_ranks=%d plan_cache=%d entries (%d hits / %d misses)\n",
			wd.Size, wd.WiresOut, blocked, state.PlanCache.Entries, state.PlanCache.Hits, state.PlanCache.Misses)
	}
	names := make([]string, 0, len(state.Engines))
	for n := range state.Engines {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := state.Engines[n]
		fmt.Fprintf(w, "  engine %s: inflight=%d futures_started=%d\n", n, e.Inflight, e.NextSeq)
		for _, wk := range e.Workers {
			fmt.Fprintf(w, "    worker %d: slots=%d orphans=%d pending=%d sink=%d resident=%v waiters=%d progress=%d\n",
				wk.Worker, wk.Slots, wk.Orphans, wk.PendingCommits, wk.SinkPending, wk.Resident, wk.Waiters, wk.Progress)
		}
	}

	var strag introspect.StragglerReport
	if err := fetchJSON(client, addr+"/debug/stragglers", &strag); err != nil {
		return err
	}
	fmt.Fprintf(w, "  stragglers: %d receive completions in window, %d distinct rounds\n",
		strag.WindowEvents, strag.ObservedRounds)
	for _, p := range strag.Plans {
		fmt.Fprintf(w, "    plan %s (%s/%s): predicted %d rounds, planned %d, %d executions\n",
			p.Name, p.Op, p.Algo, p.PredictedRounds, p.PlannedRounds, p.Executions)
	}
	for i, rs := range strag.Ranks {
		if i >= 4 {
			fmt.Fprintf(w, "    … %d more ranks\n", len(strag.Ranks)-i)
			break
		}
		if len(rs.Peers) == 0 {
			continue
		}
		worst := rs.Peers[0]
		fmt.Fprintf(w, "    rank %d waits longest on peer %d (ewma %.1fµs over %d recvs, max %.1fµs)\n",
			rs.Rank, worst.Peer, worst.EwmaNs/1e3, worst.Count, float64(worst.MaxNs)/1e3)
	}
	for i, r := range strag.Rounds {
		if i >= 3 {
			break
		}
		fmt.Fprintf(w, "    round tag %d: critical path %.1fµs (rank %d <- peer %d, %d recvs)\n",
			r.Tag, float64(r.CritNs)/1e3, r.CritRank, r.CritPeer, r.Count)
	}
	return nil
}

func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("parse %s: %w", url, err)
	}
	return nil
}

// metricsDemo runs a short exchange on the smallest torus carrying the
// neighborhood — a blocking Run and a handful of engine futures per
// variant — with a metrics registry attached, and prints the merged
// cross-rank snapshot (counters summed, gauges maxed, histograms added).
func metricsDemo(w io.Writer, nbh vec.Neighborhood) error {
	d := nbh.Dims()
	dims := make([]int, d)
	procs := 1
	for k := 0; k < d; k++ {
		ext := 1
		for _, v := range nbh {
			if a := v[k]; a > ext {
				ext = a
			} else if -a > ext {
				ext = -a
			}
		}
		dims[k] = 2*ext + 1
		procs *= dims[k]
	}
	if procs > 512 {
		return fmt.Errorf("metrics demo world needs %d ranks (> 512)", procs)
	}
	reg := metrics.NewRegistry(procs)
	err := mpi.Run(mpi.Config{Procs: procs, Metrics: reg}, func(c *mpi.Comm) error {
		cc, err := cart.NeighborhoodCreate(c, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		const m = 32
		plan, err := cart.AlltoallInit(cc, m, cart.Combining)
		if err != nil {
			return err
		}
		send := make([]int32, len(nbh)*m)
		recv := make([]int32, len(nbh)*m)
		for i := 0; i < 4; i++ {
			if err := cart.Run(plan, send, recv); err != nil {
				return err
			}
		}
		for i := 0; i < 4; i++ {
			f, err := cart.Start(plan, send, recv)
			if err != nil {
				return err
			}
			if err := f.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "metrics after demo run (%v torus, %d ranks, 4 blocking + 4 async Cart_alltoall):\n\n", dims, procs)
	fmt.Fprint(w, reg.Merged().Format())
	return nil
}
