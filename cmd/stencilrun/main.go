// Command stencilrun drives a distributed stencil computation end to end
// and reports the communication economics: rounds, volume, and per-
// exchange virtual time for the halo-exchange strategy of your choice —
// the application-level view of the paper's algorithms.
//
// Usage:
//
//	stencilrun [flags]
//
// Flags:
//
//	-procs N       number of simulated processes (default 16)
//	-grid N        global grid extent per dimension (default 64)
//	-iters N       stencil iterations (default 20)
//	-kernel K      jacobi5 | jacobi9 | life (default jacobi9)
//	-exchange X    moore | twophase | faces (default moore)
//	-algo A        combining | trivial | auto (default combining)
//	-model M       hydra | titan | none (default hydra)
//	-boundary B    torus | fixed (default torus)
//
// Example:
//
//	stencilrun -procs 16 -grid 128 -kernel jacobi9 -exchange twophase
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"cartcc"
)

func main() {
	procs := flag.Int("procs", 16, "number of simulated processes")
	grid := flag.Int("grid", 64, "global grid extent per dimension")
	iters := flag.Int("iters", 20, "stencil iterations")
	kernel := flag.String("kernel", "jacobi9", "jacobi5 | jacobi9 | life")
	exchange := flag.String("exchange", "moore", "moore | twophase | faces")
	algoName := flag.String("algo", "combining", "combining | trivial | auto")
	modelName := flag.String("model", "hydra", "hydra | titan | none")
	boundary := flag.String("boundary", "torus", "torus (periodic) | fixed (Dirichlet zero halos)")
	flag.Parse()

	var algo cartcc.Algorithm
	switch *algoName {
	case "combining":
		algo = cartcc.Combining
	case "trivial":
		algo = cartcc.Trivial
	case "auto":
		algo = cartcc.Auto
	default:
		log.Fatalf("unknown algorithm %q", *algoName)
	}
	cfg := cartcc.RunConfig{Procs: *procs, Seed: 1, Timeout: 2 * time.Minute}
	if *modelName != "none" {
		m, err := cartcc.ModelPreset(*modelName)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Model = m
	}

	procDims, err := cartcc.DimsCreate(*procs, 2)
	if err != nil {
		log.Fatal(err)
	}
	nx, err := cartcc.Decompose(*grid, procDims[0])
	if err != nil {
		log.Fatal(err)
	}
	ny, err := cartcc.Decompose(*grid, procDims[1])
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var exchangeTime, computeNorm float64
	wall := time.Now()

	err = cartcc.Run(cfg, func(w *cartcc.ProcComm) error {
		src, err := cartcc.NewGrid2D[float64](nx, ny, 1)
		if err != nil {
			return err
		}
		dst, _ := cartcc.NewGrid2D[float64](nx, ny, 1)

		corners := *kernel != "jacobi5"
		var periods []bool
		if *boundary == "fixed" {
			periods = []bool{false, false}
		} else if *boundary != "torus" {
			return fmt.Errorf("unknown boundary %q", *boundary)
		}
		var doExchange func(g *cartcc.Grid2D[float64]) error
		var describe string
		switch *exchange {
		case "moore", "faces":
			useCorners := corners && *exchange == "moore"
			ex, err := cartcc.NewExchanger2DOn(w, procDims, periods, src, useCorners, algo)
			if err != nil {
				return err
			}
			doExchange = func(g *cartcc.Grid2D[float64]) error { return cartcc.Exchange2D(ex, g) }
			stats := cartcc.ComputeStats(ex.Comm().Neighborhood())
			describe = fmt.Sprintf("%d neighbors, %d rounds (%s)", stats.TComm, ex.Plan().Rounds(), ex.Plan().Algorithm())
			if *exchange == "faces" && corners {
				return fmt.Errorf("kernel %q needs corner halos; use -exchange moore or twophase", *kernel)
			}
		case "twophase":
			if periods != nil {
				return fmt.Errorf("the two-phase exchanger currently supports torus boundaries only")
			}
			ex, err := cartcc.NewTwoPhaseExchanger2D(w, procDims, src, algo)
			if err != nil {
				return err
			}
			doExchange = func(g *cartcc.Grid2D[float64]) error { return cartcc.ExchangeTwoPhase2D(ex, g) }
			describe = fmt.Sprintf("two-phase combined schedule, %d elements/exchange", ex.VolumeElements())
		default:
			return fmt.Errorf("unknown exchange %q", *exchange)
		}

		coords, err := w.CartCoords(w.Rank())
		if err != nil {
			// The raw world communicator has no topology; derive coords
			// from the rank directly.
			coords = []int{w.Rank() / procDims[1], w.Rank() % procDims[1]}
			err = nil
		}
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				gr, gc := coords[0]*nx+i, coords[1]*ny+j
				src.Set(i, j, math.Sin(float64(gr))*math.Cos(float64(gc)))
			}
		}

		if err := cartcc.Barrier(w); err != nil {
			return err
		}
		var exT float64
		for it := 0; it < *iters; it++ {
			t0 := w.VTime()
			if err := doExchange(src); err != nil {
				return err
			}
			exT += w.VTime() - t0
			switch *kernel {
			case "jacobi5":
				cartcc.Jacobi5(dst, src)
			case "jacobi9":
				cartcc.Jacobi9(dst, src)
			case "life":
				return fmt.Errorf("life kernel needs a uint8 grid; use the gameoflife example")
			default:
				return fmt.Errorf("unknown kernel %q", *kernel)
			}
			src, dst = dst, src
		}
		norm := 0.0
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				norm += src.At(i, j) * src.At(i, j)
			}
		}
		buf := []float64{norm, exT}
		if err := cartcc.Allreduce(w, buf[:1], buf[:1], cartcc.SumOp); err != nil {
			return err
		}
		if err := cartcc.Allreduce(w, buf[1:], buf[1:], cartcc.MaxOf); err != nil {
			return err
		}
		if w.Rank() == 0 {
			mu.Lock()
			computeNorm = buf[0]
			exchangeTime = buf[1]
			mu.Unlock()
			fmt.Printf("exchange setup: %s\n", describe)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %d² over %v processes (%dx%d local), %d iterations of %s\n",
		*grid, procDims, nx, ny, *iters, *kernel)
	fmt.Printf("final field norm: %.6f\n", computeNorm)
	if cfg.Model != nil {
		fmt.Printf("halo-exchange virtual time: %.1f µs total, %.2f µs/iteration\n",
			exchangeTime*1e6, exchangeTime*1e6/float64(*iters))
	}
	fmt.Printf("wall time: %v\n", time.Since(wall).Round(time.Millisecond))
}
