package main

import (
	"bytes"
	"strings"
	"testing"

	"cartcc/internal/trace"
)

// sampleTrace renders a small timeline through the real exporter, so the
// inspector is tested against exactly what `cartbench trace` writes.
func sampleTrace(t *testing.T) []byte {
	t.Helper()
	tl := &trace.Timeline{}
	tl.SetProcess(0, "virtual time")
	tl.SetThread(trace.Track{Pid: 0, Tid: 0}, "rank 0")
	tl.SetThread(trace.Track{Pid: 0, Tid: 1}, "rank 1")
	tl.AddSpan(trace.Span{Track: trace.Track{Pid: 0, Tid: 0}, Name: "send→1", Cat: "send", StartNs: 0, DurNs: 4000, Peer: 1, Bytes: 64, Tag: 9})
	tl.AddSpan(trace.Span{Track: trace.Track{Pid: 0, Tid: 1}, Name: "recv←0", Cat: "recv", StartNs: 1000, DurNs: 9000, Peer: 0, Bytes: 64, Tag: 9})
	tl.AddInstant(trace.Instant{Track: trace.Track{Pid: 0, Tid: 0}, Name: "p0r0 send→1", Cat: "send-post", AtNs: 500, Peer: 1})
	tl.AddFlow(trace.Flow{From: trace.Track{Pid: 0, Tid: 0}, FromNs: 0, To: trace.Track{Pid: 0, Tid: 1}, ToNs: 10000})
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tl); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSummarize(t *testing.T) {
	out, err := Summarize(bytes.NewReader(sampleTrace(t)), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"2 tracks",
		"1 flows",
		"virtual time / rank 0",
		"virtual time / rank 1",
		"send:1",
		"recv:1",
		"send-post:1",
		"slowest 2 slices",
		"recv←0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeBareArray(t *testing.T) {
	raw := []byte(`[{"name":"a","cat":"send","ph":"X","ts":0,"dur":2,"pid":0,"tid":0}]`)
	out, err := Summarize(bytes.NewReader(raw), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 tracks") {
		t.Errorf("bare-array trace not summarized:\n%s", out)
	}
}

func TestSummarizeRejectsGarbage(t *testing.T) {
	if _, err := Summarize(strings.NewReader("not json"), 1); err == nil {
		t.Fatal("garbage input accepted")
	}
	if _, err := Summarize(strings.NewReader(`{"traceEvents":[]}`), 1); err == nil {
		t.Fatal("empty trace accepted")
	}
}
