// Command carttrace inspects a Chrome trace_event JSON file produced by
// `cartbench trace` (or any tool emitting the same format) and prints
// summary tables: per-track slice counts and busy time by category, the
// slowest slices, and the message-flow count — a quick textual look at a
// capture without loading ui.perfetto.dev.
//
// With -postmortem the argument is instead a post-mortem bundle written
// by the introspection plane's failure hook (internal/introspect): the
// failing rank and error, the wait-for-graph proof when the failure was
// a diagnosed deadlock, the cross-layer state snapshot, and each rank's
// flight-recorder tail.
//
// Usage:
//
//	carttrace [-top N] trace.json
//	carttrace -postmortem postmortem-*.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"cartcc/internal/introspect"
)

func main() {
	top := flag.Int("top", 5, "number of slowest slices to list")
	postmortem := flag.Bool("postmortem", false, "inspect a post-mortem bundle instead of a Chrome trace")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: carttrace [-top N] trace.json | carttrace -postmortem bundle.json")
		os.Exit(2)
	}
	if *postmortem {
		b, err := introspect.ReadBundle(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "carttrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(b.Format())
		return
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "carttrace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	sum, err := Summarize(f, *top)
	if err != nil {
		fmt.Fprintf(os.Stderr, "carttrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(sum)
}

// traceEvent is the subset of Chrome trace_event fields the summary uses.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args struct {
		Name string `json:"name"`
	} `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// Summarize reads a trace stream and renders the summary tables.
func Summarize(r io.Reader, top int) (string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return "", err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		// Perfetto also accepts a bare event array; try that before
		// giving up.
		if err2 := json.Unmarshal(data, &tf.TraceEvents); err2 != nil {
			return "", fmt.Errorf("not a Chrome trace_event file: %w", err)
		}
	}
	if len(tf.TraceEvents) == 0 {
		return "", fmt.Errorf("trace holds no events")
	}

	procNames := map[int]string{}
	threadNames := map[[2]int]string{}
	type trackStat struct {
		pid, tid int
		slices   int
		instants int
		busyUs   float64
		byCat    map[string]int
	}
	tracks := map[[2]int]*trackStat{}
	get := func(pid, tid int) *trackStat {
		k := [2]int{pid, tid}
		t := tracks[k]
		if t == nil {
			t = &trackStat{pid: pid, tid: tid, byCat: map[string]int{}}
			tracks[k] = t
		}
		return t
	}
	var slices []traceEvent
	flows := 0
	minTs, maxTs := 0.0, 0.0
	first := true
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			switch e.Name {
			case "process_name":
				procNames[e.Pid] = e.Args.Name
			case "thread_name":
				threadNames[[2]int{e.Pid, e.Tid}] = e.Args.Name
			}
			continue
		case "X":
			t := get(e.Pid, e.Tid)
			t.slices++
			t.busyUs += e.Dur
			t.byCat[e.Cat]++
			slices = append(slices, e)
		case "i", "I":
			t := get(e.Pid, e.Tid)
			t.instants++
			t.byCat[e.Cat]++
		case "s":
			flows++
		default:
			continue
		}
		end := e.Ts + e.Dur
		if first || e.Ts < minTs {
			minTs = e.Ts
		}
		if first || end > maxTs {
			maxTs = end
		}
		first = false
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events, %d tracks, %d flows, span %.1f µs\n",
		len(tf.TraceEvents), len(tracks), flows, maxTs-minTs)

	keys := make([][2]int, 0, len(tracks))
	for k := range tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	b.WriteString("\nper-track summary:\n")
	fmt.Fprintf(&b, "  %-34s %7s %9s %11s  %s\n", "track", "slices", "instants", "busy µs", "categories")
	for _, k := range keys {
		t := tracks[k]
		name := threadNames[k]
		if name == "" {
			name = fmt.Sprintf("tid %d", t.tid)
		}
		proc := procNames[t.pid]
		if proc == "" {
			proc = fmt.Sprintf("pid %d", t.pid)
		}
		cats := make([]string, 0, len(t.byCat))
		for c := range t.byCat {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		for i, c := range cats {
			cats[i] = fmt.Sprintf("%s:%d", c, t.byCat[c])
		}
		fmt.Fprintf(&b, "  %-34s %7d %9d %11.1f  %s\n",
			proc+" / "+name, t.slices, t.instants, t.busyUs, strings.Join(cats, " "))
	}

	if top > 0 && len(slices) > 0 {
		sort.SliceStable(slices, func(a, b int) bool { return slices[a].Dur > slices[b].Dur })
		if top > len(slices) {
			top = len(slices)
		}
		fmt.Fprintf(&b, "\nslowest %d slices:\n", top)
		for _, e := range slices[:top] {
			name := threadNames[[2]int{e.Pid, e.Tid}]
			if name == "" {
				name = fmt.Sprintf("pid %d tid %d", e.Pid, e.Tid)
			}
			fmt.Fprintf(&b, "  %9.1f µs  %-22s %s (%s)\n", e.Dur, e.Name, name, e.Cat)
		}
	}
	return b.String(), nil
}
