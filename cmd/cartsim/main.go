// Command cartsim drives the deterministic simulation harness: it
// generates seeded scenarios, runs every differential oracle over each
// (trivial vs combining vs pipelined executors, virtual-time determinism,
// trace well-formedness, accounting and metric conservation, fault
// outcomes), and on failure shrinks the scenario to a minimal replayable
// artifact.
//
// Usage:
//
//	cartsim -seed N [-count K]      check K scenarios from seed N upward
//	cartsim -soak 90s [-seed N]     check scenarios until the budget ends
//	cartsim -replay file.json       re-run a failing-case artifact
//	cartsim -recover [-seed N -count K]   classify crash recovery per seed
//
// Flags:
//
//	-seed N          base seed (default 1)
//	-count K         scenarios to check in seed mode (default 1)
//	-soak D          time budget; overrides -count when set
//	-recover         run the self-healing oracle instead of the plain
//	                 differential stack: each crash scenario must end
//	                 verified-recovered or typed-terminal
//	-mutate NAME     plant a schedule mutation ("copy-skew") before
//	                 checking — the oracles must catch it
//	-artifact PATH   where to write the failing-case replay file
//	                 (default sim-failure.json)
//	-transport NAME  force a transport backend for the wall-clock oracle
//	                 legs: loopback, tcp or unix (sets CARTCC_TRANSPORT;
//	                 virtual-time legs are in-process by construction,
//	                 and with real sockets the byte-determinism guarantee
//	                 below narrows: recovery classification may vary
//	                 with socket timing between the two valid categories)
//	-v               print every scenario checked, not just failures
//
// Output is deterministic for fixed flags in seed mode (no timestamps, no
// durations), so two consecutive runs of `cartsim -seed N -count K` are
// byte-identical — CI diffs them to pin harness determinism. Exit code 0
// means every scenario passed, 1 means an oracle tripped (the shrunk
// replay artifact has been written), 2 means the invocation itself was
// bad.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed        = flag.Int64("seed", 1, "base scenario seed")
		count       = flag.Int("count", 1, "scenarios to check from the base seed")
		soak        = flag.Duration("soak", 0, "time budget; overrides -count when set")
		recoverMode = flag.Bool("recover", false, "classify crash recovery per seed instead of the plain oracle stack")
		replay      = flag.String("replay", "", "re-run a failing-case artifact")
		mutate      = flag.String("mutate", "", "plant a schedule mutation before checking (copy-skew)")
		artifact    = flag.String("artifact", "sim-failure.json", "failing-case replay file to write")
		transport   = flag.String("transport", "", "force a transport backend for wall-clock oracle legs: loopback, tcp or unix (sets CARTCC_TRANSPORT)")
		verbose     = flag.Bool("v", false, "print every scenario checked")
	)
	flag.Parse()
	if !mpi.KnownTransport(*transport) {
		fmt.Fprintf(os.Stderr, "cartsim: unknown transport %q (want loopback, tcp or unix)\n", *transport)
		return 2
	}
	if *transport != "" {
		os.Setenv(mpi.EnvTransport, *transport)
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cartsim: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		return 2
	}
	opt := sim.Options{Mutate: *mutate}

	if *replay != "" {
		r, err := sim.ReadReplay(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cartsim: %v\n", err)
			return 2
		}
		if r.Mutation != "" {
			opt.Mutate = r.Mutation
		}
		fmt.Printf("replay seed=%d %s\n", r.Seed, r.Scenario.Fingerprint())
		if f := sim.CheckScenario(r.Scenario, opt); f != nil {
			fmt.Printf("FAIL %s\n", f)
			return 1
		}
		fmt.Printf("PASS (artifact's %q no longer reproduces)\n", r.Check)
		return 0
	}

	// shrinkAndWrite minimizes a failing scenario and writes the replay
	// artifact; shared by the plain and -recover sweeps (recovery failures
	// surface through CheckScenario too, so the shrinker's same-check
	// predicate holds for both).
	shrinkAndWrite := func(s int64, sc sim.Scenario, f *sim.Failure) {
		shrunk := sim.Shrink(sc, opt, *f)
		g := sim.CheckScenario(shrunk, opt)
		if g == nil {
			// Shouldn't happen (Shrink only keeps failing candidates),
			// but never write an artifact that doesn't reproduce.
			g = f
			shrunk = sc
		}
		rep := sim.Replay{Seed: s, Mutation: opt.Mutate, Scenario: shrunk, Check: g.Check, Detail: g.Detail}
		if err := sim.WriteReplay(*artifact, rep); err != nil {
			fmt.Fprintf(os.Stderr, "cartsim: writing %s: %v\n", *artifact, err)
			return
		}
		fmt.Printf("     shrunk to %s\n     replay written to %s\n", shrunk.Fingerprint(), *artifact)
	}

	if *recoverMode {
		counts := map[sim.RecoveryCategory]int{}
		for s := *seed; s < *seed+int64(*count); s++ {
			sc := sim.Generate(s)
			cat, f := sim.CheckRecovery(sc)
			if f != nil {
				fmt.Printf("FAIL seed=%d %s\n     %s\n", s, sc.Fingerprint(), f)
				shrinkAndWrite(s, sc, f)
				return 1
			}
			counts[cat]++
			if *verbose || cat != sim.RecoveryFaultFree {
				fmt.Printf("%-10s seed=%d %s\n", cat, s, sc.Fingerprint())
			}
		}
		fmt.Printf("recovery sweep: %d scenario(s) from seed %d: %d fault-free, %d recovered, %d terminal\n",
			*count, *seed, counts[sim.RecoveryFaultFree], counts[sim.RecoveryRecovered], counts[sim.RecoveryTerminal])
		return 0
	}

	check := func(s int64) (*sim.Failure, bool) {
		sc := sim.Generate(s)
		f := sim.CheckScenario(sc, opt)
		if f == nil {
			if *verbose {
				fmt.Printf("ok   seed=%d %s\n", s, sc.Fingerprint())
			}
			return nil, true
		}
		fmt.Printf("FAIL seed=%d %s\n     %s\n", s, sc.Fingerprint(), f)
		shrinkAndWrite(s, sc, f)
		return f, false
	}

	if *soak > 0 {
		deadline := time.Now().Add(*soak)
		n := 0
		for s := *seed; time.Now().Before(deadline); s++ {
			if _, ok := check(s); !ok {
				return 1
			}
			n++
		}
		fmt.Printf("soak complete: %d scenario(s) from seed %d, all oracles passed\n", n, *seed)
		return 0
	}
	for s := *seed; s < *seed+int64(*count); s++ {
		if _, ok := check(s); !ok {
			return 1
		}
	}
	fmt.Printf("checked %d scenario(s) from seed %d, all oracles passed\n", *count, *seed)
	return 0
}
