// asymmetric: the paper's asymmetric neighborhood family (n=4, f=−1:
// offsets {−1,0,1,2} per dimension) with irregular block sizes — the
// Figure 6 workload. The example prints the schedule economics for the
// trivial and message-combining algorithms, runs the irregular
// Cart_alltoallv both ways, verifies they agree, and compares their
// virtual-time costs under the Titan network model.
//
// Run with: go run ./examples/asymmetric
package main

import (
	"fmt"
	"log"
	"reflect"
	"sync"

	"cartcc"
)

const (
	d, n, f = 3, 4, -1 // 64 neighbors, asymmetric
	procs   = 27
	m       = 4 // base block size
)

func main() {
	model, err := cartcc.ModelPreset("titan")
	if err != nil {
		log.Fatal(err)
	}
	nbh, err := cartcc.Stencil(d, n, f)
	if err != nil {
		log.Fatal(err)
	}
	stats := cartcc.ComputeStats(nbh)
	fmt.Printf("neighborhood d=%d n=%d f=%d: t=%d (self included), trivial rounds=%d\n",
		d, n, f, stats.T, stats.TComm)
	fmt.Printf("message combining: C=%d rounds (C_k=%v), alltoall volume=%d, allgather volume=%d\n",
		stats.C, stats.Ck, stats.VolAlltoall, stats.VolAllgather)
	fmt.Printf("cut-off: combining wins below m = %.0f bytes on this network (ratio %.3f)\n\n",
		model.CutoffBytes(stats.T, stats.C, stats.VolAlltoall), stats.CutoffRatio)

	// Irregular blocks as in Figure 6: m·(d−z+1) elements for z non-zero
	// coordinates, nothing for the self block.
	counts := make([]int, len(nbh))
	total := 0
	for i, rel := range nbh {
		if z := rel.NonZeros(); z > 0 {
			counts[i] = m * (d - z + 1)
		}
		total += counts[i]
	}
	displs := make([]int, len(nbh))
	run := 0
	for i, c := range counts {
		displs[i] = run
		run += c
	}

	var mu sync.Mutex
	times := map[string]float64{}

	for _, algo := range []struct {
		name string
		a    cartcc.Algorithm
	}{{"trivial", cartcc.Trivial}, {"combining", cartcc.Combining}} {
		algo := algo
		var result []int32
		err := cartcc.Run(cartcc.RunConfig{Procs: procs, Model: model, Seed: 1}, func(w *cartcc.ProcComm) error {
			dims, err := cartcc.DimsCreate(procs, d)
			if err != nil {
				return err
			}
			c, err := cartcc.NeighborhoodCreate(w, dims, nil, nbh, nil, cartcc.WithAlgorithm(algo.a))
			if err != nil {
				return err
			}
			send := make([]int32, total)
			recv := make([]int32, total)
			for i := range send {
				send[i] = int32(w.Rank()*100000 + i)
			}
			if err := cartcc.Barrier(w); err != nil {
				return err
			}
			t0 := w.VTime()
			if err := cartcc.Alltoallv(c, send, counts, displs, recv, counts, displs); err != nil {
				return err
			}
			el := []float64{w.VTime() - t0}
			if err := cartcc.Allreduce(w, el, el, cartcc.MaxOf); err != nil {
				return err
			}
			if w.Rank() == 0 {
				mu.Lock()
				times[algo.name] = el[0]
				mu.Unlock()
				result = append([]int32(nil), recv...)
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s alltoallv on rank 0: %6.1f µs (virtual)\n", algo.name, times[algo.name]*1e6)
		// Both algorithms must produce identical data.
		if firstResult == nil {
			firstResult = result
		} else if !reflect.DeepEqual(firstResult, result) {
			log.Fatal("trivial and combining alltoallv disagree")
		}
	}
	fmt.Printf("\nspeed-up from message combining: %.1f×\n", times["trivial"]/times["combining"])
	fmt.Println("trivial and message-combining schedules produced identical data")
}

var firstResult []int32
