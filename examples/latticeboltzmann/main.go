// latticeboltzmann: a distributed D2Q9 lattice-Boltzmann fluid solver —
// a realistic workload for Cartesian Collective Communication. After each
// local streaming step, the distribution values that crossed the block
// boundary sit in the halo and belong to up to three neighbors (a diagonal
// population spills into the two adjacent edges and the corner). Every
// population gets one persistent Cart_alltoallw plan over the 8-neighbor
// Moore neighborhood whose per-neighbor layouts are exactly the spilled
// regions — the paper's "own datatype per neighbor" discipline
// (Listing 3) on a real kernel.
//
// The simulation advects a density pulse with a uniform background flow on
// a periodic torus and verifies that total mass is conserved to machine
// precision across all exchanges.
//
// Run with: go run ./examples/latticeboltzmann
package main

import (
	"fmt"
	"log"
	"math"

	"cartcc"
)

const (
	procRows, procCols = 2, 2
	nx, ny             = 16, 16 // local block
	steps              = 40
	tau                = 0.8 // relaxation time
)

// D2Q9 lattice: velocity directions and weights. Index 0 is the rest
// particle; 1..4 the axis directions; 5..8 the diagonals. Direction q
// moves a particle by (cys[q], cxs[q]) in (row, column) terms.
var (
	cxs     = [9]int{0, 1, 0, -1, 0, 1, -1, -1, 1}
	cys     = [9]int{0, 0, 1, 0, -1, 1, 1, -1, -1}
	weights = [9]float64{4.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36}
)

const stride = ny + 2

// idx addresses interior coordinates (i, j) in [-1, n]² on the haloed slab.
func idx(i, j int) int { return (i+1)*stride + (j + 1) }

// span is an inclusive index range along one dimension.
type span struct{ lo, hi int }

func (s span) empty() bool { return s.lo > s.hi }

// sideSpans returns the sender-halo span and the matching receiver-interior
// span along one dimension, for halo side a ∈ {-1,0,1} and population
// component d ∈ {-1,0,1} (extent n). The sender's shifted image covers
// [d, n-1+d]; side a of the halo is row -1, rows 0..n-1, or row n.
func sideSpans(a, d, n int) (send, recv span) {
	switch a {
	case 1:
		if d != 1 {
			return span{1, 0}, span{1, 0} // empty
		}
		return span{n, n}, span{0, 0}
	case -1:
		if d != -1 {
			return span{1, 0}, span{1, 0}
		}
		return span{-1, -1}, span{n - 1, n - 1}
	default:
		// Interior extent intersected with the shifted image; no
		// translation across the process boundary in this dimension.
		s := span{max(0, d), min(n-1, n-1+d)}
		return s, s
	}
}

// regionLayout builds the layout of rows×cols (inclusive spans, interior
// coordinates) on the haloed slab.
func regionLayout(rows, cols span) cartcc.Layout {
	var l cartcc.Layout
	if rows.empty() || cols.empty() {
		return l
	}
	for r := rows.lo; r <= rows.hi; r++ {
		l.Append(idx(r, cols.lo), cols.hi-cols.lo+1)
	}
	return l
}

func main() {
	err := cartcc.Launch(procRows*procCols, func(w *cartcc.ProcComm) error {
		// Full Moore neighborhood, shared by all populations' plans.
		var nbh cartcc.Neighborhood
		for a := -1; a <= 1; a++ {
			for b := -1; b <= 1; b++ {
				if a == 0 && b == 0 {
					continue
				}
				nbh = append(nbh, cartcc.Vec{a, b})
			}
		}
		c, err := cartcc.NeighborhoodCreate(w, []int{procRows, procCols}, nil, nbh, nil,
			cartcc.WithAlgorithm(cartcc.AlgorithmAuto))
		if err != nil {
			return err
		}

		// One persistent alltoallw plan per moving population: the block
		// for neighbor (a, b) is the part of the shifted image that
		// landed on that side of the halo (often empty).
		plans := make([]*cartcc.Plan, 9)
		for q := 1; q < 9; q++ {
			di, dj := cys[q], cxs[q]
			sendL := make([]cartcc.Layout, len(nbh))
			recvL := make([]cartcc.Layout, len(nbh))
			for k, rel := range nbh {
				a, b := rel[0], rel[1]
				sr, rr := sideSpans(a, di, nx)
				sc, rc := sideSpans(b, dj, ny)
				sendL[k] = regionLayout(sr, sc)
				recvL[k] = regionLayout(rr, rc)
			}
			p, err := cartcc.AlltoallwInit(c, sendL, recvL, cartcc.AlgorithmAuto)
			if err != nil {
				return fmt.Errorf("population %d: %w", q, err)
			}
			plans[q] = p
		}
		if w.Rank() == 0 {
			msgs, elems := 0, 0
			for q := 1; q < 9; q++ {
				msgs += plans[q].Messages()
				elems += plans[q].SendElements()
			}
			fmt.Printf("streaming exchange: %d messages, %d elements per step (all populations)\n", msgs, elems)
		}

		coords := c.Coords()
		cur := make([][]float64, 9)
		next := make([][]float64, 9)
		for q := 0; q < 9; q++ {
			cur[q] = make([]float64, (nx+2)*stride)
			next[q] = make([]float64, (nx+2)*stride)
		}
		// Initial condition: background density 1 with a Gaussian pulse at
		// the global center, uniform rightward velocity.
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				gi := coords[0]*nx + i
				gj := coords[1]*ny + j
				dx := float64(gi - procRows*nx/2)
				dy := float64(gj - procCols*ny/2)
				rho := 1.0 + 0.5*math.Exp(-(dx*dx+dy*dy)/16)
				ux, uy := 0.08, 0.0
				for q := 0; q < 9; q++ {
					cu := 3 * (float64(cxs[q])*ux + float64(cys[q])*uy)
					usq := 1.5 * (ux*ux + uy*uy)
					cur[q][idx(i, j)] = rho * weights[q] * (1 + cu + 0.5*cu*cu - usq)
				}
			}
		}
		initialMass, err := totalMass(w, cur)
		if err != nil {
			return err
		}

		for step := 1; step <= steps; step++ {
			// Collision (BGK relaxation), interior only.
			for i := 0; i < nx; i++ {
				for j := 0; j < ny; j++ {
					var rho, ux, uy float64
					at := idx(i, j)
					for q := 0; q < 9; q++ {
						v := cur[q][at]
						rho += v
						ux += v * float64(cxs[q])
						uy += v * float64(cys[q])
					}
					ux /= rho
					uy /= rho
					usq := 1.5 * (ux*ux + uy*uy)
					for q := 0; q < 9; q++ {
						cu := 3 * (float64(cxs[q])*ux + float64(cys[q])*uy)
						eq := rho * weights[q] * (1 + cu + 0.5*cu*cu - usq)
						cur[q][at] += (eq - cur[q][at]) / tau
					}
				}
			}
			// Streaming: shift each population by its direction (spilling
			// into the halo), then run its exchange plan in place.
			for q := 0; q < 9; q++ {
				dst := next[q]
				for i := range dst {
					dst[i] = 0
				}
				di, dj := cys[q], cxs[q]
				for i := 0; i < nx; i++ {
					for j := 0; j < ny; j++ {
						dst[idx(i+di, j+dj)] = cur[q][idx(i, j)]
					}
				}
				if q > 0 {
					if err := cartcc.RunPlan(plans[q], dst, dst); err != nil {
						return err
					}
				}
			}
			cur, next = next, cur
			if step%10 == 0 {
				mass, err := totalMass(w, cur)
				if err != nil {
					return err
				}
				if w.Rank() == 0 {
					fmt.Printf("step %3d: total mass %.9f (drift %.2e)\n", step, mass, mass-initialMass)
				}
				if math.Abs(mass-initialMass) > 1e-9*initialMass {
					return fmt.Errorf("mass not conserved: %v vs %v", mass, initialMass)
				}
			}
		}
		if w.Rank() == 0 {
			fmt.Println("D2Q9 lattice-Boltzmann: mass conserved across all streaming exchanges")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// totalMass sums all distribution functions over the interior, globally.
func totalMass(w *cartcc.ProcComm, f [][]float64) (float64, error) {
	local := 0.0
	for q := 0; q < 9; q++ {
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				local += f[q][idx(i, j)]
			}
		}
	}
	buf := []float64{local}
	if err := cartcc.Allreduce(w, buf, buf, cartcc.SumOp); err != nil {
		return 0, err
	}
	return buf[0], nil
}
