// stencil2d: a distributed 9-point Jacobi relaxation on a 2-D torus — the
// computation that motivates the paper's Figure 1 and Listing 3. The halo
// exchange (rows, columns and corners, in place) is one Cart_alltoallw
// plan over the 8-neighbor Moore neighborhood; the diagonal neighbors are
// exactly what plain MPI Cartesian communicators cannot express.
//
// The program relaxes a hot-spot initial condition, reports the global
// residual every few iterations, and cross-checks the final field against
// a serial computation of the same global problem.
//
// Run with: go run ./examples/stencil2d
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"cartcc"
)

const (
	procRows, procCols = 2, 2
	globalN            = 32 // global grid is globalN × globalN
	iterations         = 50
)

func main() {
	nx, err := cartcc.Decompose(globalN, procRows)
	if err != nil {
		log.Fatal(err)
	}
	ny, err := cartcc.Decompose(globalN, procCols)
	if err != nil {
		log.Fatal(err)
	}

	// Serial reference on the full torus grid.
	ref := serialJacobi(initialGlobal(), iterations)

	var mu sync.Mutex
	maxErr := 0.0

	err = cartcc.Launch(procRows*procCols, func(w *cartcc.ProcComm) error {
		src, err := cartcc.NewGrid2D[float64](nx, ny, 1)
		if err != nil {
			return err
		}
		dst, _ := cartcc.NewGrid2D[float64](nx, ny, 1)
		ex, err := cartcc.NewExchanger2D(w, []int{procRows, procCols}, src, true, cartcc.AlgorithmAuto)
		if err != nil {
			return err
		}
		coords := ex.Comm().Coords()
		global := initialGlobal()
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				src.Set(i, j, global[coords[0]*nx+i][coords[1]*ny+j])
			}
		}

		for it := 1; it <= iterations; it++ {
			if err := cartcc.Exchange2D(ex, src); err != nil {
				return err
			}
			cartcc.Jacobi9(dst, src)
			src, dst = dst, src

			if it%10 == 0 {
				// Global residual ‖src − dst‖∞ via allreduce.
				local := 0.0
				for i := 0; i < nx; i++ {
					for j := 0; j < ny; j++ {
						if d := math.Abs(src.At(i, j) - dst.At(i, j)); d > local {
							local = d
						}
					}
				}
				res := []float64{local}
				if err := cartcc.Allreduce(w, res, res, cartcc.MaxOf); err != nil {
					return err
				}
				if w.Rank() == 0 {
					fmt.Printf("iteration %3d: residual %.3e\n", it, res[0])
				}
			}
		}

		// Compare against the serial reference.
		local := 0.0
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				d := math.Abs(src.At(i, j) - ref[coords[0]*nx+i][coords[1]*ny+j])
				if d > local {
					local = d
				}
			}
		}
		mu.Lock()
		if local > maxErr {
			maxErr = local
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max deviation from serial reference after %d iterations: %.3e\n", iterations, maxErr)
	if maxErr > 1e-12 {
		log.Fatal("distributed result does not match the serial reference")
	}
	fmt.Println("distributed 9-point Jacobi matches the serial computation exactly")
}

// initialGlobal builds the hot-spot initial condition.
func initialGlobal() [][]float64 {
	g := make([][]float64, globalN)
	for i := range g {
		g[i] = make([]float64, globalN)
	}
	g[globalN/2][globalN/2] = 1000
	g[globalN/4][3*globalN/4] = -500
	return g
}

// serialJacobi runs the same relaxation on the full periodic grid.
func serialJacobi(g [][]float64, iters int) [][]float64 {
	n := len(g)
	cur := g
	for it := 0; it < iters; it++ {
		next := make([][]float64, n)
		for i := range next {
			next[i] = make([]float64, n)
			for j := range next[i] {
				at := func(di, dj int) float64 {
					return cur[((i+di)%n+n)%n][((j+dj)%n+n)%n]
				}
				edge := at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1)
				corner := at(-1, -1) + at(-1, 1) + at(1, -1) + at(1, 1)
				next[i][j] = (4*edge + corner) / 20
			}
		}
		cur = next
	}
	return cur
}
