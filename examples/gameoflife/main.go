// gameoflife: Conway's Game of Life distributed over a 2×2 process torus.
// Each generation needs the full Moore halo, exchanged with one Cartesian
// collective; a glider repeatedly crosses process boundaries (and the
// torus edges), so any halo-exchange defect derails it immediately. The
// global board is assembled on rank 0 with the runtime's Gather-style
// collectives and rendered as ASCII art.
//
// Run with: go run ./examples/gameoflife
package main

import (
	"fmt"
	"log"
	"strings"

	"cartcc"
)

const (
	procRows, procCols = 2, 2
	nx, ny             = 8, 8 // local block; global board is 16×16
	generations        = 24
)

func main() {
	err := cartcc.Launch(procRows*procCols, func(w *cartcc.ProcComm) error {
		src, err := cartcc.NewGrid2D[uint8](nx, ny, 1)
		if err != nil {
			return err
		}
		dst, _ := cartcc.NewGrid2D[uint8](nx, ny, 1)
		ex, err := cartcc.NewExchanger2D(w, []int{procRows, procCols}, src, true, cartcc.AlgorithmAuto)
		if err != nil {
			return err
		}
		coords := ex.Comm().Coords()

		// A glider near the global origin, heading south-east.
		for _, cell := range [][2]int{{1, 2}, {2, 3}, {3, 1}, {3, 2}, {3, 3}} {
			lr, lc := cell[0]-coords[0]*nx, cell[1]-coords[1]*ny
			if lr >= 0 && lr < nx && lc >= 0 && lc < ny {
				src.Set(lr, lc, 1)
			}
		}

		for gen := 0; gen <= generations; gen++ {
			if gen%8 == 0 {
				if err := render(w, src, gen); err != nil {
					return err
				}
			}
			if err := cartcc.Exchange2D(ex, src); err != nil {
				return err
			}
			cartcc.LifeStep(dst, src)
			src, dst = dst, src
		}

		// After 24 generations a glider has moved 6 cells diagonally; it
		// must still have exactly 5 live cells.
		alive := 0
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				alive += int(src.At(i, j))
			}
		}
		total := []int{alive}
		if err := cartcc.Allreduce(w, total, total, cartcc.SumOp); err != nil {
			return err
		}
		if total[0] != 5 {
			return fmt.Errorf("glider disintegrated: %d live cells", total[0])
		}
		if w.Rank() == 0 {
			fmt.Printf("after %d generations the glider is intact (5 live cells)\n", generations)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// render assembles the global board on rank 0 and prints it.
func render(w *cartcc.ProcComm, g *cartcc.Grid2D[uint8], gen int) error {
	// Flatten the local interior.
	local := make([]uint8, nx*ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			local[i*ny+j] = g.At(i, j)
		}
	}
	all := make([]uint8, procRows*procCols*nx*ny)
	// Everybody contributes its block; rank order is row-major over the
	// process grid, so rank r owns block (r/procCols, r%procCols).
	if err := cartcc.GlobalAllgather(w, local, all); err != nil {
		return err
	}
	if w.Rank() != 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "generation %d\n", gen)
	for gr := 0; gr < procRows*nx; gr++ {
		for gc := 0; gc < procCols*ny; gc++ {
			pr, lr := gr/nx, gr%nx
			pc, lc := gc/ny, gc%ny
			rank := pr*procCols + pc
			if all[rank*nx*ny+lr*ny+lc] == 1 {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
	return nil
}
