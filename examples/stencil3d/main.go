// stencil3d: explicit 3-D heat diffusion with the 27-point Laplacian on a
// 2×2×2 process torus. The 26-neighbor Moore halo exchange runs as one
// Cart_alltoallw plan; the example also prints the schedule economics —
// 26 neighbors served in 6 message-combining rounds — and checks that
// total heat is conserved (the kernel is conservative on a torus).
//
// Run with: go run ./examples/stencil3d
package main

import (
	"fmt"
	"log"
	"math"

	"cartcc"
)

const (
	px, py, pz = 2, 2, 2
	local      = 8 // local interior is local³
	steps      = 30
	r          = 0.02 // diffusion number
)

func main() {
	err := cartcc.Launch(px*py*pz, func(w *cartcc.ProcComm) error {
		src, err := cartcc.NewGrid3D[float64](local, local, local, 1)
		if err != nil {
			return err
		}
		dst, _ := cartcc.NewGrid3D[float64](local, local, local, 1)
		ex, err := cartcc.NewExchanger3D(w, []int{px, py, pz}, src, true, cartcc.AlgorithmAuto)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			stats := cartcc.ComputeStats(ex.Comm().Neighborhood())
			fmt.Printf("27-point halo exchange: %d neighbors, %d combining rounds, volume %d blocks\n",
				stats.TComm, stats.C, stats.VolAlltoall)
		}

		// Initial condition: one hot cell on rank 0.
		if w.Rank() == 0 {
			src.Set(local/2, local/2, local/2, 1000)
		}
		initialHeat, err := totalHeat(w, src)
		if err != nil {
			return err
		}

		for step := 1; step <= steps; step++ {
			if err := cartcc.Exchange3D(ex, src); err != nil {
				return err
			}
			cartcc.Heat27(dst, src, r)
			src, dst = dst, src
			if step%10 == 0 {
				heat, err := totalHeat(w, src)
				if err != nil {
					return err
				}
				maxT, err := maxTemp(w, src)
				if err != nil {
					return err
				}
				if w.Rank() == 0 {
					fmt.Printf("step %3d: total heat %.6f (drift %.2e), peak temperature %.4f\n",
						step, heat, heat-initialHeat, maxT)
				}
				if math.Abs(heat-initialHeat) > 1e-9*math.Abs(initialHeat) {
					return fmt.Errorf("heat not conserved: %v vs %v", heat, initialHeat)
				}
			}
		}
		if w.Rank() == 0 {
			fmt.Println("heat conserved to machine precision across all exchanges")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// totalHeat sums the interior over all ranks.
func totalHeat(w *cartcc.ProcComm, g *cartcc.Grid3D[float64]) (float64, error) {
	local := 0.0
	for i := 0; i < g.NX; i++ {
		for j := 0; j < g.NY; j++ {
			for k := 0; k < g.NZ; k++ {
				local += g.At(i, j, k)
			}
		}
	}
	buf := []float64{local}
	if err := cartcc.Allreduce(w, buf, buf, cartcc.SumOp); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// maxTemp finds the global peak temperature.
func maxTemp(w *cartcc.ProcComm, g *cartcc.Grid3D[float64]) (float64, error) {
	local := math.Inf(-1)
	for i := 0; i < g.NX; i++ {
		for j := 0; j < g.NY; j++ {
			for k := 0; k < g.NZ; k++ {
				if v := g.At(i, j, k); v > local {
					local = v
				}
			}
		}
	}
	buf := []float64{local}
	if err := cartcc.Allreduce(w, buf, buf, cartcc.MaxOf); err != nil {
		return 0, err
	}
	return buf[0], nil
}
