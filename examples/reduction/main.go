// reduction: Cartesian neighborhood reduction (the paper's Section 2.2
// extension) used for a distributed consensus iteration: every process
// repeatedly replaces its value with the weighted average of its star
// neighborhood, computed with NeighborReduce — one combining collective
// per step (star stencil on a 4×4×4 torus) — until the
// whole torus agrees on the global mean.
//
// Run with: go run ./examples/reduction
package main

import (
	"fmt"
	"log"
	"math"

	"cartcc"
)

const (
	d     = 3
	procs = 64
	steps = 120
)

func main() {
	err := cartcc.Launch(procs, func(w *cartcc.ProcComm) error {
		nbh, err := cartcc.Star(d, 1) // 7-point star incl. self
		if err != nil {
			return err
		}
		dims, err := cartcc.DimsCreate(procs, d)
		if err != nil {
			return err
		}
		c, err := cartcc.NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := cartcc.NeighborReduceInit(c, 1, cartcc.Combining)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			fmt.Printf("neighborhood reduction: %d contributions combined in %d rounds (volume %d blocks)\n",
				c.NeighborCount(), plan.Rounds(), plan.Volume())
		}

		// Initial values 0..p-1; the consensus target is the global mean.
		value := float64(w.Rank())
		target := float64(procs-1) / 2
		t := float64(c.NeighborCount())

		for step := 1; step <= steps; step++ {
			send := []float64{value}
			recv := make([]float64, 1)
			if err := cartcc.NeighborReduce(c, send, recv, cartcc.SumOp); err != nil {
				return err
			}
			_ = plan // the one-shot call reuses the same schedule shape
			value = recv[0] / t
			if step%30 == 0 {
				spread := []float64{math.Abs(value - target)}
				if err := cartcc.Allreduce(w, spread, spread, cartcc.MaxOf); err != nil {
					return err
				}
				if w.Rank() == 0 {
					fmt.Printf("step %2d: max deviation from global mean %.3e\n", step, spread[0])
				}
			}
		}

		final := []float64{math.Abs(value - target)}
		if err := cartcc.Allreduce(w, final, final, cartcc.MaxOf); err != nil {
			return err
		}
		if final[0] > 1e-12 {
			return fmt.Errorf("consensus failed: deviation %v", final[0])
		}
		if w.Rank() == 0 {
			fmt.Println("consensus reached: every process holds the global mean")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
