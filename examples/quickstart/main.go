// Quickstart: create a Cartesian neighborhood communicator for the
// 9-point (Moore) stencil on a 3×3 process torus and perform one sparse
// alltoall — the minimal end-to-end use of the library.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"cartcc"
)

func main() {
	const p = 9
	var mu sync.Mutex
	lines := make([]string, 0, p)

	err := cartcc.Launch(p, func(w *cartcc.ProcComm) error {
		// The 9-point stencil: all offsets in {-1,0,1}², including (0,0).
		nbh, err := cartcc.Stencil(2, 3, -1)
		if err != nil {
			return err
		}
		c, err := cartcc.NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}

		// One personalized value per neighbor; neighbor i receives
		// 100·rank + i from each of its sources.
		t := c.NeighborCount()
		send := make([]int32, t)
		recv := make([]int32, t)
		for i := range send {
			send[i] = int32(100*w.Rank() + i)
		}
		if err := cartcc.Alltoall(c, send, recv); err != nil {
			return err
		}

		stats := cartcc.ComputeStats(nbh)
		mu.Lock()
		lines = append(lines, fmt.Sprintf(
			"rank %d at %v received %v (schedule: %d rounds instead of %d, volume %d blocks)",
			w.Rank(), c.Coords(), recv, stats.C, stats.TComm, stats.VolAlltoall))
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}
