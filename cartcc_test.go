package cartcc_test

import (
	"fmt"
	"math"
	"testing"

	"cartcc"
)

func TestFacadeQuickstart(t *testing.T) {
	// The doc-comment quick start, verified.
	err := cartcc.Launch(9, func(w *cartcc.ProcComm) error {
		nbh, err := cartcc.Stencil(2, 3, -1)
		if err != nil {
			return err
		}
		c, err := cartcc.NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		t0 := len(nbh)
		send := make([]float64, t0)
		recv := make([]float64, t0)
		for i := range send {
			send[i] = float64(w.Rank()*100 + i)
		}
		if err := cartcc.Alltoall(c, send, recv); err != nil {
			return err
		}
		for i, rel := range nbh {
			src, ok := c.Grid().RankDisplace(w.Rank(), rel.Neg())
			if !ok {
				return fmt.Errorf("displacement failed")
			}
			if recv[i] != float64(src*100+i) {
				return fmt.Errorf("rank %d block %d: %v", w.Rank(), i, recv[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeModelAndStats(t *testing.T) {
	m, err := cartcc.ModelPreset("hydra")
	if err != nil {
		t.Fatal(err)
	}
	nbh, _ := cartcc.Stencil(3, 3, -1)
	s := cartcc.ComputeStats(nbh)
	if s.C != 6 || s.VolAlltoall != 54 {
		t.Fatalf("stats %+v", s)
	}
	cut := m.CutoffBytes(s.T, s.C, s.VolAlltoall)
	if cut <= 0 || math.IsInf(cut, 1) {
		t.Fatalf("cutoff %v", cut)
	}
}

func TestFacadeVirtualTimeRun(t *testing.T) {
	model, _ := cartcc.ModelPreset("titan")
	err := cartcc.Run(cartcc.RunConfig{Procs: 4, Model: model, Seed: 1}, func(w *cartcc.ProcComm) error {
		if err := cartcc.Barrier(w); err != nil {
			return err
		}
		if w.VTime() <= 0 {
			return fmt.Errorf("virtual clock did not advance: %v", w.VTime())
		}
		vals := []float64{float64(w.Rank())}
		if err := cartcc.Allreduce(w, vals, vals, cartcc.MaxOf); err != nil {
			return err
		}
		if vals[0] != 3 {
			return fmt.Errorf("allreduce max = %v", vals[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLayouts(t *testing.T) {
	l := cartcc.SubarrayLayout(5, 1, 1, 2, 2)
	if l.Size() != 4 {
		t.Fatalf("subarray size %d", l.Size())
	}
	v := cartcc.VectorLayout(3, 1, 5, 0)
	if v.Size() != 3 {
		t.Fatalf("vector size %d", v.Size())
	}
	if _, err := cartcc.IndexedLayout([]int{0}, []int{1, 2}); err == nil {
		t.Fatal("mismatched indexed accepted")
	}
	if cartcc.Contiguous(2, 3).Size() != 3 {
		t.Fatal("contiguous size")
	}
}

func TestFacadeStencilSubstrate(t *testing.T) {
	err := cartcc.Launch(4, func(w *cartcc.ProcComm) error {
		g, err := cartcc.NewGrid2D[float64](2, 2, 1)
		if err != nil {
			return err
		}
		ex, err := cartcc.NewExchanger2D(w, []int{2, 2}, g, true, cartcc.Combining)
		if err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				g.Set(i, j, float64(w.Rank()))
			}
		}
		if err := cartcc.Exchange2D(ex, g); err != nil {
			return err
		}
		if g.At(-1, 0) < 0 || g.At(-1, 0) > 3 {
			return fmt.Errorf("halo value %v", g.At(-1, 0))
		}
		dst, _ := cartcc.NewGrid2D[float64](2, 2, 1)
		cartcc.Jacobi5(dst, g)
		cartcc.Jacobi9(dst, g)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDetect(t *testing.T) {
	err := cartcc.Launch(4, func(w *cartcc.ProcComm) error {
		dims := []int{2, 2}
		nbh := cartcc.Neighborhood{cartcc.Vec{0, 1}}
		grid, err := cartcc.NewGrid(dims, nil)
		if err != nil {
			return err
		}
		tgt, _ := grid.RankDisplace(w.Rank(), nbh[0])
		c, detected, err := cartcc.DetectCartesian(w, dims, nil, []int{tgt})
		if err != nil {
			return err
		}
		if !detected || c == nil {
			return fmt.Errorf("detection failed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
