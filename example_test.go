package cartcc_test

import (
	"fmt"

	"cartcc"
)

// The canonical setup: a 9-point stencil neighborhood on a 3×3 torus,
// personalized exchange with every neighbor in one collective.
func ExampleAlltoall() {
	nbh, _ := cartcc.Stencil(2, 3, -1) // all offsets in {-1,0,1}²
	_ = cartcc.Launch(9, func(w *cartcc.ProcComm) error {
		c, err := cartcc.NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		send := make([]int, c.NeighborCount())
		recv := make([]int, c.NeighborCount())
		for i := range send {
			send[i] = w.Rank()
		}
		if err := cartcc.Alltoall(c, send, recv); err != nil {
			return err
		}
		if w.Rank() == 4 { // center process of the 3x3 torus
			fmt.Println("center received from sources:", recv)
		}
		return nil
	})
	// Block i arrives from source R − N[i]; for the center of a 3×3 torus
	// with offsets in row-major order that enumerates the ranks backwards.
	// Output:
	// center received from sources: [8 7 6 5 4 3 2 1 0]
}

// Schedule economics of Table 1: rounds and volumes for the 27-point
// stencil.
func ExampleComputeStats() {
	nbh, _ := cartcc.Stencil(3, 3, -1)
	s := cartcc.ComputeStats(nbh)
	fmt.Printf("t=%d trivial rounds=%d combining rounds=%d\n", s.T, s.TComm, s.C)
	fmt.Printf("alltoall volume=%d allgather volume=%d\n", s.VolAlltoall, s.VolAllgather)
	// Output:
	// t=27 trivial rounds=26 combining rounds=6
	// alltoall volume=54 allgather volume=26
}

// The analytic cut-off of Section 3.1: below this block size message
// combining beats direct delivery.
func ExampleModelPreset() {
	model, _ := cartcc.ModelPreset("hydra")
	nbh, _ := cartcc.Stencil(3, 3, -1)
	s := cartcc.ComputeStats(nbh)
	cut := model.CutoffBytes(s.T, s.C, s.VolAlltoall)
	fmt.Printf("combining wins below %.0f bytes per block\n", cut)
	// Output:
	// combining wins below 14583 bytes per block
}

// Sparse allgather: the same block to every neighbor, one incoming block
// per source.
func ExampleAllgather() {
	nbh, _ := cartcc.VonNeumann(1, 1) // offsets -1, 0, +1 on a ring
	_ = cartcc.Launch(4, func(w *cartcc.ProcComm) error {
		c, err := cartcc.NeighborhoodCreate(w, []int{4}, nil, nbh, nil)
		if err != nil {
			return err
		}
		recv := make([]int, c.NeighborCount())
		if err := cartcc.Allgather(c, []int{w.Rank() * 10}, recv); err != nil {
			return err
		}
		if w.Rank() == 0 {
			fmt.Println("rank 0 gathered:", recv)
		}
		return nil
	})
	// Output:
	// rank 0 gathered: [10 0 30]
}

// Neighborhood reduction (the Section 2.2 extension): the sum of every
// source neighbor's contribution, combined along the reversed allgather
// tree in C rounds.
func ExampleNeighborReduce() {
	nbh, _ := cartcc.Moore(2, 1)
	_ = cartcc.Launch(9, func(w *cartcc.ProcComm) error {
		c, err := cartcc.NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		sum := make([]int, 1)
		if err := cartcc.NeighborReduce(c, []int{1}, sum, cartcc.SumOp); err != nil {
			return err
		}
		if w.Rank() == 0 {
			fmt.Println("contributions combined:", sum[0])
		}
		return nil
	})
	// Output:
	// contributions combined: 9
}

// Section 2.2 auto-detection: a plain adjacency list is recognized as a
// Cartesian neighborhood and the specialized algorithms are preselected.
func ExampleDetectCartesian() {
	dims := []int{2, 3}
	_ = cartcc.Launch(6, func(w *cartcc.ProcComm) error {
		grid, _ := cartcc.NewGrid(dims, nil)
		// Every process targets its east neighbor — same relative offset.
		east, _ := grid.RankDisplace(w.Rank(), cartcc.Vec{0, 1})
		c, detected, err := cartcc.DetectCartesian(w, dims, nil, []int{east})
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			fmt.Println("detected:", detected, "neighborhood:", c.Neighborhood())
		}
		return nil
	})
	// Output:
	// detected: true neighborhood: [(0,1)]
}
